(** Engine facade: stratified materialization with a choice of strategy,
    automatic fallback to the well-founded semantics, and conjunctive
    querying of materialized databases.

    This is the single deductive engine the mediator architecture calls
    for ("the mediator needs only a single GCM engine", Section 2). *)

type strategy = Naive | Seminaive

type cost_oracle = {
  order : Logic.Rule.t -> focus:int option -> int list option;
      (** analysis-derived literal order for a (rule, focus) — [None]
          declines, leaving the syntactic greedy score in charge.
          Invalid orders (not a stepwise-evaluable permutation) are
          rejected by {!Plan.order_ok} and fall back to greedy. *)
  estimate : string -> int option;
      (** static cardinality upper bound per predicate ([None] =
          unbounded/unknown); compared against actual extents in
          [report.est_vs_actual] *)
}
(** A static cost analysis feeding the planner — build one with
    [Analysis.Card.oracle]. *)

type durability = {
  fs : Codec.fs;  (** where checkpoint and WAL live (see {!Codec.real_fs}) *)
  wal_max_bytes : int;
      (** rotation threshold: after a maintenance batch pushes the WAL
          past this size, the maintained state is checkpointed and the
          log compacted to a bare header *)
}
(** Durability configuration: a checkpoint file plus a write-ahead log
    of maintenance batches, both under one {!Codec.fs}. See DESIGN.md
    §14 for the atomicity argument. *)

val durability : ?wal_max_bytes:int -> dir:string -> unit -> durability
(** Durability rooted at directory [dir] (created on demand).
    [wal_max_bytes] defaults to 1_000_000. *)

val checkpoint_file : string
(** ["checkpoint.kind"] — path of the snapshot, relative to the
    durability [fs] root. *)

val wal_file : string
(** ["wal.kind"] — path of the write-ahead log, relative to the
    durability [fs] root. *)

type config = {
  strategy : strategy;
  max_term_depth : int;
      (** skolem guard: derived facts containing terms nested deeper
          than this are suppressed (domain-map assertions create
          placeholder objects [f_{C,r,D}(x)]; the bound keeps chained
          assertions terminating) *)
  max_rounds : int;
  allow_wellfounded_fallback : bool;
      (** when [false], {!materialize} raises {!Unstratified} instead of
          switching to the alternating fixpoint *)
  compiled_plans : bool;
      (** evaluate rule bodies through cached compiled plans
          ({!Plan}; the default) instead of the interpreted
          {!Eval.solve_body} path. Same models, same join order — the
          interpreted path is kept as the differential-testing oracle
          and is what [strategy = Naive] always uses. *)
  prune : (Logic.Rule.t list -> Database.t -> Logic.Rule.t list) option;
      (** dead-rule pruning hook, run by {!materialize} after program
          facts are loaded and before evaluation. The hook receives the
          rule-only program and the base database and must return a
          {e sublist} of rules whose omission does not change the model
          — i.e. only drop rules proved to derive nothing
          ({!Analysis.Absint.prune} is such a hook; the engine cannot
          depend on the analysis library, so the wiring is inverted).
          Pruned-rule counts land in [report.rules_pruned]. *)
  minimize : (Logic.Rule.t list -> Logic.Rule.t list) option;
      (** semantic rule minimization hook, run by {!materialize} after
          [prune] and before evaluation. The hook may rewrite each rule
          to an equivalent one with fewer body atoms — dropping joins
          that containment analysis proves implied by the rest of the
          body ([Analysis.Contain.minimize] is such a hook; same wiring
          inversion as [prune]). It must preserve the model exactly.
          Dropped-atom counts land in [report.atoms_minimized]. *)
  cost_oracle : cost_oracle option;
      (** when set, {!materialize} installs the oracle around the whole
          evaluation ({!Plan.with_oracle}) so compiled plans use
          analysis-derived literal orders, and the report gains
          [cost_oracle_used] / [est_vs_actual]. Same wiring inversion
          as [prune]: the analysis library builds the closures. *)
  domains : int;
      (** domains for parallel evaluation: [0] (the default) reads
          [KIND_DOMAINS] from the environment (see {!Pool.env_domains}),
          [1] forces sequential evaluation, [n > 1] evaluates delta
          batches on a shared [n]-lane domain pool. Parallel and
          sequential evaluation produce identical databases and
          identical report counters (see DESIGN.md §13); only
          [domains_used] / [parallel_batches] differ. Requires
          [compiled_plans]; the interpreted path is always
          sequential. *)
  durability : durability option;
      (** when set, {!materialize} writes a checkpoint of the stratified
          result (and compacts the WAL), {!maintain} appends each batch
          to the WAL {e before} applying it (fsync'd — crash recovery
          lands on exactly the pre- or post-batch database), and
          {!recover} rebuilds the materialization from checkpoint +
          log suffix. [None] (the default) falls back to the
          [KIND_DURABLE_DIR] environment variable, read once; unset
          means durability off. The well-founded fallback path never
          checkpoints (snapshots encode two-valued databases only). *)
}

val default_config : config

exception Unstratified of string list
exception Undefined_atoms of int
(** Raised by {!materialize} when the well-founded fallback leaves atoms
    undefined: a materialized database cannot represent three-valued
    results — use {!Wellfounded.compute} directly for those programs. *)

type report = {
  stratified : bool;
  strata : int;
  rounds : int;
  derived : int;
  skolems_suppressed : int;
  joins : int;
  tuples_scanned : int;
  index_hits : int;
      (** join steps answered by probing a signature index rather than
          scanning the extent *)
  plan_cache_hits : int;
      (** compiled-plan lookups answered from the global plan cache
          (0 when [config.compiled_plans] is false) *)
  strata_skipped : int;
      (** maintenance only: strata left untouched because no dependency
          changed extent (0 for a full materialization) *)
  delta_facts : int;
      (** maintenance only: net facts added + removed by the delta *)
  rules_pruned : int;
      (** rules dropped by the [config.prune] hook before evaluation
          (0 when no hook is set and on the maintenance path) *)
  atoms_minimized : int;
      (** body atoms dropped by the [config.minimize] hook before
          evaluation (0 when no hook is set and on the maintenance
          path) *)
  cost_oracle_used : int;
      (** plan lookups resolved with a validated oracle-supplied
          literal order (0 without [config.cost_oracle] and on the
          maintenance path) *)
  est_vs_actual : float;
      (** geometric mean of (static cardinality estimate / actual
          extent) over the predicates the oracle bounds: 1.0 = exact,
          10.0 = an order of magnitude over-estimated; 0.0 = no oracle
          installed or nothing finite to compare *)
  domains_used : int;
      (** lanes of the domain pool engaged for this evaluation (1 =
          sequential) *)
  parallel_batches : int;
      (** delta batches fanned out across the pool (0 = everything ran
          sequentially, e.g. deltas below the {!Parexec.min_rows}
          threshold) *)
  checkpoint_ms : float;
      (** wall time spent writing a checkpoint this call (0.0 when
          durability is off or nothing was checkpointed) *)
  recovery_ms : float;
      (** {!recover} only: wall time for snapshot read + WAL replay *)
  wal_bytes : int;
      (** size of the write-ahead log after this call (0 when
          durability is off) *)
}

val empty_report : report

val materialize :
  ?config:config -> ?report:report ref -> Program.t -> Database.t -> Database.t
(** [materialize p edb] computes the least (or well-founded) model of
    [p] over [edb] and returns it as a fresh database containing EDB and
    IDB facts. [edb] is not mutated. Ground facts contained in [p]
    itself are added first. *)

val extend :
  ?config:config ->
  Program.t ->
  Database.t ->
  Logic.Atom.t list ->
  (int, string) result
(** Incremental maintenance: add new ground facts to an
    already-materialized database and propagate their consequences
    semi-naively (only joins touching the delta re-run). Returns the
    number of new facts (input + derived). Restrictions: the program
    must be stratified and {e negation-free and aggregate-free in the
    affected strata} — deletions/additions under negation would need
    DRed-style over-deletion, which this engine does not implement;
    [Error] explains when that applies. The database is mutated. *)

val maintain :
  ?config:config ->
  ?report:report ref ->
  Program.t ->
  Database.t ->
  Maintain.delta ->
  (Maintain.report, string) result
(** Incremental view maintenance: absorb a batch of EDB insertions and
    deletions into an already-materialized stratified database,
    re-evaluating only the strata whose dependencies changed (see
    {!Maintain}). Unlike {!extend}/{!retract} this handles stratified
    negation and aggregation (changed nonmonotonic strata are rebuilt
    from the maintained strata below them). The database is mutated.
    [Error] if the program is unstratified or a delta fact is
    non-ground. For repeated deltas keep a {!Maintain.t} handle
    instead — this entry point re-adopts the database on every call.

    With durability configured, the batch is appended to the WAL and
    fsync'd {e before} it is applied (write-ahead), and the log is
    rotated into a fresh checkpoint once it exceeds
    [durability.wal_max_bytes]. *)

val recover :
  ?config:config ->
  ?report:report ref ->
  Program.t ->
  (Database.t option, string) result
(** Rebuild the materialization of [p] from the configured durability
    directory: read the checkpoint, then replay the WAL suffix through
    incremental maintenance (cost proportional to the log, not the
    database). [Ok None] when no checkpoint exists (cold-start — call
    {!materialize}). A torn WAL tail is dropped: by the write-ahead
    ordering it belongs to a batch that was never applied. [Error] if
    no durability is configured, a file is unreadable mid-stream, or
    [p] no longer stratifies over the snapshot. The report's
    [recovery_ms] / [wal_bytes] fields are filled; [strata] / [rounds] /
    [derived] echo the checkpoint's saved counters. *)

val retract :
  ?config:config ->
  Program.t ->
  Database.t ->
  Logic.Atom.t list ->
  (int, string) result
(** Incremental deletion by delete-and-rederive (DRed): over-delete
    every fact whose known derivations touch the retracted facts, then
    re-derive the survivors that still have alternative proofs.
    Returns the number of facts that actually disappeared. The
    explicitly retracted facts themselves are kept out even if rules
    could re-derive them. Same restrictions as {!extend} (positive
    stratified programs). The database is mutated. *)

val query :
  ?stats:Eval.stats -> Database.t -> Logic.Literal.t list -> Logic.Subst.t list
(** Solve a conjunctive query (with negation-as-absence, comparisons and
    aggregates) against a materialized database. *)

val answers : Database.t -> Logic.Atom.t -> Tuple.t list
(** Instances of an atom pattern in the database, as bound argument
    tuples. *)

val holds : Database.t -> Logic.Atom.t -> bool
(** [holds db a] — [a] may contain variables; true iff some instance is
    in [db]. *)
