module Atom = Logic.Atom

type t = (string, Relation.t) Hashtbl.t

let create () : t = Hashtbl.create 64

let relation db pred =
  match Hashtbl.find_opt db pred with
  | Some r -> r
  | None ->
    let r = Relation.create () in
    Hashtbl.add db pred r;
    r

let relation_opt db pred = Hashtbl.find_opt db pred

(* bulk-load entry: like [relation], but a relation created here is
   sized for [hint] rows up front, so a loader that knows the row
   count (the snapshot reader) skips the doubling-resize cascade *)
let relation_hint db pred ~hint =
  match Hashtbl.find_opt db pred with
  | Some r -> r
  | None ->
    let r = Relation.create ~hint:(max 16 hint) () in
    Hashtbl.add db pred r;
    r

let add_tuple db pred tup = Relation.add (relation db pred) tup

let add_fact db (a : Atom.t) = add_tuple db a.Atom.pred a.Atom.args

let remove_fact db (a : Atom.t) =
  match Hashtbl.find_opt db a.Atom.pred with
  | Some r -> Relation.remove r a.Atom.args
  | None -> false

let mem db (a : Atom.t) =
  match Hashtbl.find_opt db a.Atom.pred with
  | Some r -> Relation.mem r a.Atom.args
  | None -> false

let predicates db =
  Hashtbl.fold (fun p _ acc -> p :: acc) db [] |> List.sort String.compare

let cardinal db = Hashtbl.fold (fun _ r acc -> acc + Relation.cardinal r) db 0

let count db pred =
  match Hashtbl.find_opt db pred with
  | Some r -> Relation.cardinal r
  | None -> 0

let facts db pred =
  match Hashtbl.find_opt db pred with
  | Some r -> List.map (Atom.make pred) (Relation.to_list r)
  | None -> []

let all_facts db =
  List.concat_map (fun p -> facts db p) (predicates db)

let copy db =
  let db' = create () in
  Hashtbl.iter (fun p r -> Hashtbl.replace db' p (Relation.copy r)) db;
  db'

let merge_into ~dst src =
  Hashtbl.fold
    (fun p r acc ->
      Relation.fold
        (fun tup acc -> if add_tuple dst p tup then acc + 1 else acc)
        r acc)
    src 0

let equal a b =
  let preds =
    List.sort_uniq String.compare (predicates a @ predicates b)
  in
  List.for_all
    (fun p ->
      count a p = count b p
      &&
      match (relation_opt a p, relation_opt b p) with
      | None, _ | _, None -> true (* equal counts, so both empty *)
      | Some ra, Some rb ->
        List.equal
          (fun x y -> Tuple.compare x y = 0)
          (Relation.to_list ra) (Relation.to_list rb))
    preds

let of_facts fs =
  let db = create () in
  List.iter (fun f -> ignore (add_fact db f)) fs;
  db

let pp ppf db =
  List.iter
    (fun p ->
      List.iter
        (fun a -> Format.fprintf ppf "%a.@." Atom.pp a)
        (facts db p))
    (predicates db)
