(** Semi-naive bottom-up evaluation: after the first round, each rule is
    re-evaluated once per positive body literal with that literal
    focused on the delta (facts new in the previous round), so unchanged
    joins are never recomputed. *)

type outcome = {
  rounds : int;
  derived : int;
  skolems_suppressed : int;
}

val run :
  ?stats:Eval.stats ->
  ?pool:Pool.t ->
  ?compiled:bool ->
  ?max_term_depth:int ->
  ?max_rounds:int ->
  neg:Database.t ->
  Logic.Rule.t list ->
  Database.t ->
  outcome
(** Same contract as {!Naive.run}. Mutates [db]. [compiled] (default
    [true]) derives through cached {!Plan}s; [false] keeps the
    interpreted {!Eval.derive} path — the differential-testing oracle.
    [pool] fans each round's big-enough delta batches out across a
    domain pool ({!Parexec}; compiled path only) — results and outcome
    counters are identical with and without it. *)
