module Atom = Logic.Atom
module Literal = Logic.Literal
module Rule = Logic.Rule
module Subst = Logic.Subst

type justification =
  | Extensional
  | Rule of { rule : Rule.t; premises : t list }
  | Absent of Atom.t
  | Computed of string

and t = { fact : Atom.t; how : justification }

module AS = Set.Make (struct
  type t = Atom.t

  let compare = Atom.compare
end)

let explain p db ~edb fact =
  if not (Database.mem db fact) then None
  else begin
    let rules = Program.rules p in
    let memo : (Atom.t, t) Hashtbl.t = Hashtbl.create 64 in
    (* DFS with an on-path set: the least model guarantees every derived
       fact has a non-circular proof, so refusing facts already on the
       path only prunes circular candidates. *)
    let rec prove path (a : Atom.t) =
      if Database.mem edb a then Some { fact = a; how = Extensional }
      else
        match Hashtbl.find_opt memo a with
        | Some t -> Some t
        | None ->
          if AS.mem a path then None
          else begin
            let path = AS.add a path in
            let rec try_rules k = function
              | [] -> None
              | r :: rest -> (
                let r' = Rule.rename_apart ~suffix:(Printf.sprintf "_e%d" k) r in
                match Atom.unify r'.Rule.head a with
                | None -> try_rules (k + 1) rest
                | Some s0 -> (
                  let solutions =
                    Eval.solve_body ~db ~neg:db
                      (List.map (Literal.apply s0) r'.Rule.body)
                  in
                  match try_solutions r' s0 solutions with
                  | Some proof -> Some proof
                  | None -> try_rules (k + 1) rest))
            and try_solutions r' s0 = function
              | [] -> None
              | s :: rest -> (
                let full = Subst.compose s0 s in
                match premises_of full r'.Rule.body [] with
                | Some premises ->
                  Some { fact = a; how = Rule { rule = r'; premises } }
                | None -> try_solutions r' s0 rest)
            and premises_of s body acc =
              match body with
              | [] -> Some (List.rev acc)
              | Literal.Pos at :: rest when Literal.is_builtin at.Atom.pred ->
                premises_of s rest
                  ({ fact = Atom.apply s at; how = Computed "builtin" } :: acc)
              | Literal.Pos at :: rest -> (
                let ground = Atom.apply s at in
                match prove path ground with
                | Some sub -> premises_of s rest (sub :: acc)
                | None -> None)
              | Literal.Neg at :: rest ->
                premises_of s rest
                  ({ fact = Atom.apply s at; how = Absent (Atom.apply s at) } :: acc)
              | Literal.Cmp (op, t1, t2) :: rest ->
                let text =
                  Format.asprintf "%a %a %a" Logic.Term.pp (Subst.apply s t1)
                    Literal.pp_cmp op Logic.Term.pp (Subst.apply s t2)
                in
                premises_of s rest
                  ({ fact = Atom.make "=test=" []; how = Computed text } :: acc)
              | Literal.Assign (t1, _) :: rest ->
                let text =
                  Format.asprintf "%a is <arith>" Logic.Term.pp (Subst.apply s t1)
                in
                premises_of s rest
                  ({ fact = Atom.make "=assign=" []; how = Computed text } :: acc)
              | Literal.Agg ag :: rest ->
                let text =
                  Format.asprintf "%a = aggregate{...}" Logic.Term.pp
                    (Subst.apply s ag.Literal.result)
                in
                premises_of s rest
                  ({ fact = Atom.make "=agg=" []; how = Computed text } :: acc)
            in
            match try_rules 0 rules with
            | Some proof ->
              Hashtbl.replace memo a proof;
              Some proof
            | None -> None
          end
    in
    prove AS.empty fact
  end

let rec depth t =
  match t.how with
  | Rule { premises; _ } ->
    1 + List.fold_left (fun d p -> max d (depth p)) 0 premises
  | _ -> 1

let rec size t =
  match t.how with
  | Rule { premises; _ } -> 1 + List.fold_left (fun s p -> s + size p) 0 premises
  | _ -> 1

let rec leaves t =
  match t.how with
  | Extensional -> [ t.fact ]
  | Rule { premises; _ } -> List.concat_map leaves premises
  | Absent _ | Computed _ -> []

let rec pp ppf t =
  match t.how with
  | Extensional -> Format.fprintf ppf "@[%a  [source fact]@]" Atom.pp t.fact
  | Absent a -> Format.fprintf ppf "@[not %a  [absent]@]" Atom.pp a
  | Computed text -> Format.fprintf ppf "@[%s  [computed]@]" text
  | Rule { rule; premises } ->
    Format.fprintf ppf "@[<v 2>%a  [by %s]" Atom.pp t.fact
      (Atom.to_string rule.Rule.head);
    List.iter (fun p -> Format.fprintf ppf "@,%a" pp p) premises;
    Format.fprintf ppf "@]"
