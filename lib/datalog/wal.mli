(** Append-only write-ahead log of {!Maintain} batches.

    One {!Codec} frame per batch (insertions and deletions, predicate +
    tuple payloads encoded structurally), flushed — fsync'd on the real
    filesystem — before the batch is applied to the database. Recovery
    replays the surviving entries through the incremental-maintenance
    path, so its cost is proportional to the log suffix since the last
    checkpoint, not to the database.

    The reader tolerates a torn tail: a batch whose frame was cut or
    corrupted by a crash is dropped (the crash happened before the
    append's barrier completed, so the batch was never applied
    durably), and everything before it is replayed. {!open_log} repairs
    such a tear — atomically rewriting the file to its last valid
    frame boundary — before accepting appends, so a batch fsync'd after
    a crash-recovery is never stranded behind torn bytes.

    The log is paired with the checkpoint that subsumes it by a
    {e generation} number: {!reset} stamps it, {!replay} reports it, and
    recovery replays entries only when the log's generation matches the
    checkpoint's — a mismatch is the fingerprint of a crash between a
    checkpoint write and the log reset, where the surviving entries
    belong to the previous checkpoint and must be discarded. *)

type entry = { additions : Logic.Atom.t list; deletions : Logic.Atom.t list }

type t
(** An open log, positioned for appending. *)

val magic : string

val open_log : Codec.fs -> path:string -> t
(** Open for appending, creating the file (header only) if missing or
    shorter than a header, and repairing a torn tail (atomic rewrite to
    the last valid frame boundary) left by a crash mid-append. Raises
    [Failure] on a file with the wrong magic or format version. *)

val append : t -> entry -> unit
(** Encode, write, flush. When [append] returns, the batch is durable. *)

val bytes : t -> int
(** Current log size in bytes (header included). *)

val gen : t -> int
(** The open log's generation (0 for a log never stamped by {!reset}). *)

val close : t -> unit

val replay :
  Codec.fs -> path:string -> (int * entry list * Codec.tail, string) result
(** The log's generation plus every complete batch in append order; a
    missing file is [Ok (0, [], Clean)]. [Error] only on wrong
    magic/version or an undecodable checksum-valid payload. *)

val generation : Codec.fs -> path:string -> int
(** The generation stamped on the log at [path]; 0 when the file is
    absent, unreadable, or was never stamped. *)

val reset : Codec.fs -> path:string -> gen:int -> unit
(** Truncate the log to a header plus a generation stamp, atomically —
    the compaction step after the generation-[gen] checkpoint has made
    its entries redundant. *)

val encode_entry : entry -> string
(** The frame image of one batch (exposed for size accounting and
    tests). *)

val coalesce : entry list -> entry
(** Net effect of a log suffix as a single batch: for every fact the
    chronologically last operation wins (within one entry deletions
    apply before additions, as {!Maintain.apply} does, so a fact on
    both sides of one entry counts as added). Sound because the
    materialized model is a
    function of the final base database alone — replaying the
    coalesced batch through maintenance lands on the same model as
    replaying the entries one by one, at the cost of one propagation
    pass instead of one per entry. *)
