(** Append-only write-ahead log of {!Maintain} batches.

    One {!Codec} frame per batch (insertions and deletions, predicate +
    tuple payloads encoded structurally), flushed — fsync'd on the real
    filesystem — before the batch is applied to the database. Recovery
    replays the surviving entries through the incremental-maintenance
    path, so its cost is proportional to the log suffix since the last
    checkpoint, not to the database.

    The reader tolerates a torn tail: a batch whose frame was cut or
    corrupted by a crash is dropped (the crash happened before the
    append's barrier completed, so the batch was never applied
    durably), and everything before it is replayed. *)

type entry = { additions : Logic.Atom.t list; deletions : Logic.Atom.t list }

type t
(** An open log, positioned for appending. *)

val magic : string

val open_log : Codec.fs -> path:string -> t
(** Open for appending, creating the file (header only) if missing or
    shorter than a header. *)

val append : t -> entry -> unit
(** Encode, write, flush. When [append] returns, the batch is durable. *)

val bytes : t -> int
(** Current log size in bytes (header included). *)

val close : t -> unit

val replay : Codec.fs -> path:string -> (entry list * Codec.tail, string) result
(** Every complete batch in append order; a missing file is
    [Ok ([], Clean)]. [Error] only on wrong magic/version or an
    undecodable checksum-valid payload. *)

val reset : Codec.fs -> path:string -> unit
(** Truncate the log to a bare header, atomically — the compaction step
    after a fresh checkpoint has made its entries redundant. *)

val encode_entry : entry -> string
(** The frame image of one batch (exposed for size accounting and
    tests). *)

val coalesce : entry list -> entry
(** Net effect of a log suffix as a single batch: for every fact the
    chronologically last operation wins (within one entry deletions
    apply before additions, as {!Maintain.apply} does, so a fact on
    both sides of one entry counts as added). Sound because the
    materialized model is a
    function of the final base database alone — replaying the
    coalesced batch through maintenance lands on the same model as
    replaying the entries one by one, at the cost of one propagation
    pass instead of one per entry. *)
