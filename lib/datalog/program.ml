module Rule = Logic.Rule

type t = { rules : Rule.t list }

let make rules =
  let rec check = function
    | [] -> Ok { rules }
    | r :: rest -> (
      match Rule.check_safety r with
      | Ok () -> check rest
      | Error e -> Error e)
  in
  check rules

let make_exn rules =
  match make rules with Ok p -> p | Error e -> invalid_arg e

let empty = { rules = [] }
let rules p = p.rules
let append p1 p2 = { rules = p1.rules @ p2.rules }

let add_rule p r =
  match Rule.check_safety r with
  | Ok () -> Ok { rules = p.rules @ [ r ] }
  | Error e -> Error e

let size p = List.length p.rules

let idb_predicates p =
  List.map Rule.head_pred p.rules |> List.sort_uniq String.compare

let predicates p =
  List.concat_map
    (fun r -> Rule.head_pred r :: List.map fst (Rule.body_predicates r))
    p.rules
  |> List.sort_uniq String.compare

let split_facts p =
  let facts, rules =
    List.partition
      (fun r -> Rule.is_fact r && Logic.Atom.is_ground r.Rule.head)
      p.rules
  in
  (List.map (fun r -> r.Rule.head) facts, { rules })

let pp ppf p =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@.")
    Rule.pp ppf p.rules
