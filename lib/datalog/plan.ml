module Term = Logic.Term
module Atom = Logic.Atom
module Literal = Logic.Literal
module Subst = Logic.Subst
module Rule = Logic.Rule
module SS = Set.Make (String)

(* A compiled rule body: the greedy literal ordering of
   [Eval.solve_body] run once at compile time, variables numbered into
   slots of a fixed-size environment array, and every positive literal
   turned into an indexed lookup with precomputed key extractors. The
   interpreter in [Eval] stays as the differential-testing oracle.

   Alongside each term slot the executor tracks the column's intern id
   when it is known (slots bound from stored rows carry the row's
   cached id), so lookup keys and emitted rows mostly avoid re-interning
   through the term pool. *)

(* Build a ground term from the environment. Compile-time invariant:
   every [Bslot] is written by an earlier op before it is read, and
   slots only ever hold ground terms (they are bound from ground rows,
   ground unifications, or evaluated expressions). *)
type builder =
  | Bconst of Term.t
  | Bslot of int
  | Bapp of string * builder array

(* One component of a lookup key: constants are interned at compile
   time, plain slots reuse (and memoize) the slot's id, composite
   components are built then interned per probe. *)
type keysrc = Kfix of int | Kslot of int | Kdyn of builder

(* Match a column of a ground row, binding / checking slots. *)
type pat =
  | Pconst of Term.t
  | Pbind of int
  | Pcheck of int
  | Papp of string * pat array

type col =
  | Ckey          (* covered by the lookup key: equality already holds *)
  | Cpat of pat   (* residual column: match, possibly binding slots *)

type cexpr = Cleaf of builder | Cbin of Literal.arith_op * cexpr * cexpr

type op =
  | Scan of {
      pred : string;
      from_delta : bool;
      positions : int array;  (* key positions, strictly increasing *)
      key : keysrc array;
      cols : col array;       (* one action per column *)
    }
  | Negcheck of { pred : string; args : builder array }
  | Builtin of { pred : string; args : builder array }
  | UnifyEq of { bound : builder; pat : pat }
  | Cmpop of { op : Literal.cmp; left : builder; right : builder }
  | Assign of { expr : cexpr; pat : pat }
  | Aggregate of {
      agg : Literal.agg;
      in_slots : (string * int) list;
      out_slots : (string * int) list;
    }

(* Head column: constants carry their compile-time intern id, plain
   slots reuse the slot id at emit time. *)
type hcol = Hconst of Term.t * int | Hslot of int | Hbuild of builder

type t = {
  head_pred : string;
  head : hcol array;
  nslots : int;
  ops : op array;
  focus_pred : string option;
      (* predicate of the delta-focus literal, when compiled with one —
         lets the caller hand the executor the delta rows directly *)
}

(* ------------------------------------------------------------------ *)
(* Compilation *)

(* Shared with the greedy step and with [order_ok]: a literal can run
   once its needed variables are bound; an equality can run once either
   side is fully bound (it unifies into the other). *)
let lit_evaluable bound lit =
  match lit with
  | Literal.Cmp (Literal.Eq, t1, t2) ->
    List.for_all (fun x -> SS.mem x bound) (Term.vars t1)
    || List.for_all (fun x -> SS.mem x bound) (Term.vars t2)
  | l -> List.for_all (fun x -> SS.mem x bound) (Literal.needs l)

let compile ?order (r : Rule.t) ~focus =
  let slots = Hashtbl.create 8 in
  let nslots = ref 0 in
  let slot_of x =
    match Hashtbl.find_opt slots x with
    | Some i -> i
    | None ->
      let i = !nslots in
      incr nslots;
      Hashtbl.add slots x i;
      i
  in
  let rec builder bound t =
    match t with
    | Term.Const _ -> Bconst t
    | Term.Var x ->
      if not (SS.mem x bound) then
        invalid_arg "Plan.compile: builder over unbound variable";
      Bslot (slot_of x)
    | Term.App (f, args) ->
      if Term.is_ground t then Bconst t
      else Bapp (f, Array.of_list (List.map (builder bound) args))
  in
  (* [bound_ref] accumulates variables bound while matching earlier
     columns of the same literal, so repeated variables compile to
     bind-then-check. *)
  let rec pat bound_ref t =
    match t with
    | Term.Const _ -> Pconst t
    | Term.App _ when Term.is_ground t -> Pconst t
    | Term.Var x ->
      if SS.mem x !bound_ref then Pcheck (slot_of x)
      else begin
        bound_ref := SS.add x !bound_ref;
        Pbind (slot_of x)
      end
    | Term.App (f, args) ->
      Papp (f, Array.of_list (List.map (pat bound_ref) args))
  in
  let rec cexpr bound = function
    | Literal.Leaf t -> Cleaf (builder bound t)
    | Literal.Bin (op, e1, e2) -> Cbin (op, cexpr bound e1, cexpr bound e2)
  in
  let compile_scan bound ~from_delta (a : Atom.t) =
    let bound_ref = ref bound in
    let positions = ref [] in
    let key = ref [] in
    let cols =
      List.mapi
        (fun i t ->
          (* Delta relations live for one round and are scanned once
             per plan, so an index over them can never amortize: delta
             scans always run as full scans with residual checks. *)
          if
            (not from_delta)
            && List.for_all (fun x -> SS.mem x bound) (Term.vars t)
          then begin
            positions := i :: !positions;
            (key :=
               match builder bound t with
               | Bconst c -> Kfix (Term.id c) :: !key
               | Bslot s -> Kslot s :: !key
               | b -> Kdyn b :: !key);
            Ckey
          end
          else Cpat (pat bound_ref t))
        a.Atom.args
    in
    Scan
      {
        pred = a.Atom.pred;
        from_delta;
        positions = Array.of_list (List.rev !positions);
        key = Array.of_list (List.rev !key);
        cols = Array.of_list cols;
      }
  in
  (* Greedy order: identical evaluability and scoring to
     [Eval.solve_body], so compiled and interpreted evaluation pick the
     same join order — only here it runs once, not per round. *)
  let lits = Array.of_list r.Rule.body in
  let n = Array.length lits in
  let used = Array.make n false in
  let focus_idx = match focus with Some i -> i | None -> -1 in
  let ops = ref [] in
  let forced = ref order in
  let rec step bound remaining =
    if remaining = 0 then bound
    else begin
      let evaluable i = (not used.(i)) && lit_evaluable bound lits.(i) in
      let score i =
        match lits.(i) with
        | Literal.Pos a ->
          let vs = Atom.vars a in
          let boundness =
            List.length (List.filter (fun x -> SS.mem x bound) vs)
          in
          if i = focus_idx then 1000 + boundness else 100 + boundness
        | Literal.Neg _ | Literal.Cmp _ | Literal.Assign _ -> 500
        | Literal.Agg _ -> 10
      in
      let best = ref (-1) in
      (match !forced with
      | Some (i :: rest) ->
        (* an oracle-supplied order; [lookup] only passes validated
           orders, but direct [compile ?order] callers get checked *)
        forced := Some rest;
        if i < 0 || i >= n || not (evaluable i) then
          invalid_arg "Plan.compile: supplied order is not evaluable";
        best := i
      | Some [] -> invalid_arg "Plan.compile: supplied order too short"
      | None ->
        for i = 0 to n - 1 do
          if evaluable i && (!best = -1 || score i > score !best) then
            best := i
        done);
      if !best = -1 then
        invalid_arg "Plan.compile: body is not range-restricted"
      else begin
        let i = !best in
        used.(i) <- true;
        let lit = lits.(i) in
        let op =
          match lit with
          | Literal.Pos a when Literal.is_builtin a.Atom.pred ->
            Builtin
              {
                pred = a.Atom.pred;
                args = Array.of_list (List.map (builder bound) a.Atom.args);
              }
          | Literal.Pos a ->
            compile_scan bound ~from_delta:(i = focus_idx) a
          | Literal.Neg a ->
            Negcheck
              {
                pred = a.Atom.pred;
                args = Array.of_list (List.map (builder bound) a.Atom.args);
              }
          | Literal.Cmp (Literal.Eq, t1, t2) ->
            let ground t =
              List.for_all (fun x -> SS.mem x bound) (Term.vars t)
            in
            if ground t1 && ground t2 then
              Cmpop
                {
                  op = Literal.Eq;
                  left = builder bound t1;
                  right = builder bound t2;
                }
            else if ground t1 then
              UnifyEq { bound = builder bound t1; pat = pat (ref bound) t2 }
            else UnifyEq { bound = builder bound t2; pat = pat (ref bound) t1 }
          | Literal.Cmp (op, t1, t2) ->
            Cmpop { op; left = builder bound t1; right = builder bound t2 }
          | Literal.Assign (t, e) ->
            Assign { expr = cexpr bound e; pat = pat (ref bound) t }
          | Literal.Agg ag ->
            let vs = Literal.vars lit in
            let in_slots =
              List.filter_map
                (fun x -> if SS.mem x bound then Some (x, slot_of x) else None)
                vs
            in
            let out_slots =
              List.filter_map
                (fun x ->
                  if SS.mem x bound then None else Some (x, slot_of x))
                (Literal.binds lit)
            in
            Aggregate { agg = ag; in_slots; out_slots }
        in
        ops := op :: !ops;
        let bound' =
          List.fold_left (fun acc x -> SS.add x acc) bound (Literal.binds lit)
        in
        step bound' (remaining - 1)
      end
    end
  in
  let bound = step SS.empty n in
  let head =
    Array.of_list
      (List.map
         (fun arg ->
           match builder bound arg with
           | Bconst c -> Hconst (c, Term.id c)
           | Bslot s -> Hslot s
           | b -> Hbuild b)
         r.Rule.head.Atom.args)
  in
  {
    head_pred = r.Rule.head.Atom.pred;
    head;
    nslots = max 1 !nslots;
    ops = Array.of_list (List.rev !ops);
    focus_pred =
      (if focus_idx < 0 then None
       else
         match lits.(focus_idx) with
         | Literal.Pos a -> Some a.Atom.pred
         | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* The cost oracle *)

type oracle = Rule.t -> focus:int option -> int list option

(* Module-level installation point: evaluation strategies resolve plans
   through [lookup] deep inside their drivers, so the engine installs
   the oracle around a whole materialization rather than threading it
   through every signature. Single-threaded by construction. *)
let oracle_ref : oracle option ref = ref None

let with_oracle o f =
  let prev = !oracle_ref in
  oracle_ref := Some o;
  Fun.protect ~finally:(fun () -> oracle_ref := prev) f

(* A supplied order is only usable when it is a permutation of the body
   that stays evaluable step by step — otherwise fall back to greedy
   rather than compile a plan that would raise. *)
let order_ok (r : Rule.t) o =
  let lits = Array.of_list r.Rule.body in
  let n = Array.length lits in
  List.length o = n
  && List.sort_uniq compare o = List.init n Fun.id
  &&
  let bound = ref SS.empty in
  List.for_all
    (fun i ->
      lit_evaluable !bound lits.(i)
      && begin
           bound :=
             List.fold_left
               (fun acc x -> SS.add x acc)
               !bound
               (Literal.binds lits.(i));
           true
         end)
    o

(* ------------------------------------------------------------------ *)
(* Plan cache *)

module Key = struct
  type t = Rule.t * int option * int list option

  let equal (r1, f1, o1) (r2, f2, o2) =
    f1 = f2 && o1 = o2 && Rule.equal r1 r2

  let hash k = Hashtbl.hash_param 60 120 k
end

module C = Hashtbl.Make (Key)

let cache : t C.t = C.create 256

let cache_size () = C.length cache
let clear_cache () = C.reset cache

let lookup ?(stats = Eval.no_stats) (r : Rule.t) ~focus =
  let order =
    match !oracle_ref with
    | None -> None
    | Some f -> (
      match f r ~focus with
      | Some o when order_ok r o -> Some o
      | Some _ | None -> None)
  in
  if order <> None then Eval.bump stats.Eval.cost_oracle_used 1;
  match C.find_opt cache (r, focus, order) with
  | Some plan ->
    Eval.bump stats.Eval.plan_cache_hits 1;
    plan
  | None ->
    let t0 = Sys.time () in
    let plan = compile ?order r ~focus in
    stats.Eval.order_time <- stats.Eval.order_time +. (Sys.time () -. t0);
    C.replace cache (r, focus, order) plan;
    plan

(* ------------------------------------------------------------------ *)
(* Execution *)

let dummy = Term.Const (Term.Bool false)

(* The executor threads two parallel arrays: [env] holds the ground
   term of each slot, [env_ids] its intern id when known (-1
   otherwise). Every write to [env] updates [env_ids]; reads that need
   an id memoize it. [emit] receives the built head columns and their
   ids (fresh arrays, ownership passes to the callback). *)
let no_probe1 : int -> Tuple.Packed.t list = fun _ -> []
let no_proben : int array -> Tuple.Packed.t list = fun _ -> []

let exec_plan ?(stats = Eval.no_stats) ~db ~neg ?delta ?delta_rows plan
    ~(emit : Term.t array -> int array -> unit) =
  let env = Array.make plan.nslots dummy in
  let env_ids = Array.make plan.nslots (-1) in
  let rec build = function
    | Bconst t -> t
    | Bslot i -> env.(i)
    | Bapp (f, bs) -> Term.App (f, Array.to_list (Array.map build bs))
  in
  (* [id] is the intern id of [t] when the caller knows it (a stored
     row's cached column id), -1 otherwise. *)
  let rec pmatch p t id =
    match p with
    | Pconst c -> Term.equal c t
    | Pbind i ->
      env.(i) <- t;
      env_ids.(i) <- id;
      true
    | Pcheck i -> Term.equal env.(i) t
    | Papp (f, ps) -> (
      match t with
      | Term.App (g, args) when String.equal f g ->
        let np = Array.length ps in
        let rec go j = function
          | [] -> j = np
          | a :: rest -> j < np && pmatch ps.(j) a (-1) && go (j + 1) rest
        in
        go 0 args
      | _ -> false)
  in
  let rec to_expr = function
    | Cleaf b -> Literal.Leaf (build b)
    | Cbin (op, e1, e2) -> Literal.Bin (op, to_expr e1, to_expr e2)
  in
  let slot_id s =
    let id = env_ids.(s) in
    if id >= 0 then id
    else begin
      let id = Term.id env.(s) in
      env_ids.(s) <- id;
      id
    end
  in
  let keyval = function
    | Kfix id -> id
    | Kslot s -> slot_id s
    | Kdyn b -> Term.id (build b)
  in
  let nops = Array.length plan.ops in
  (* Relations, index probes and probe-key buffers are resolved once per
     execution, not per outer row. Execution never mutates the databases
     (rows are emitted to the caller), so the resolution cannot go stale
     mid-run; probe closures capture index tables that [Relation]
     mutates in place, so they survive absorption between executions. *)
  let rels = Array.make nops None in
  let scan_rows = Array.make nops None in
  let probe1 = Array.make nops no_probe1 in
  let proben = Array.make nops no_proben in
  let keybuf = Array.make nops [||] in
  Array.iteri
    (fun i op ->
      match op with
      | Scan sc ->
        if sc.from_delta then (
          match delta_rows with
          | Some rows -> scan_rows.(i) <- Some rows
          | None -> (
            match delta with
            | None -> ()
            | Some d -> rels.(i) <- Database.relation_opt d sc.pred))
        else (
          match Database.relation_opt db sc.pred with
          | None -> ()
          | Some rel ->
            rels.(i) <- Some rel;
            let npos = Array.length sc.positions in
            if npos = 1 then
              probe1.(i) <- Relation.prober1 rel ~pos:sc.positions.(0)
            else if npos > 1 then begin
              keybuf.(i) <- Array.make npos 0;
              proben.(i) <- Relation.prober rel ~positions:sc.positions
            end)
      | Negcheck ng -> rels.(i) <- Database.relation_opt neg ng.pred
      | _ -> ())
    plan.ops;
  let nhead = Array.length plan.head in
  (* Per-op row callbacks, compiled once per execution (below, after
     [exec] is in scope): plain variable bindings become direct slot
     writes, residual patterns keep column order. Scans fetch their
     callback from this array instead of rebuilding a closure per
     outer row. *)
  let row_action = Array.make nops (fun (_ : Tuple.Packed.t) -> ()) in
  let rec exec i =
    if i = nops then begin
      let args = Array.make nhead dummy in
      let ids = Array.make nhead (-1) in
      for j = 0 to nhead - 1 do
        match plan.head.(j) with
        | Hconst (c, id) ->
          args.(j) <- c;
          ids.(j) <- id
        | Hslot s ->
          args.(j) <- env.(s);
          ids.(j) <- env_ids.(s)
        | Hbuild b -> args.(j) <- build b
      done;
      emit args ids
    end
    else
      match plan.ops.(i) with
      | Scan sc -> (
        (* Delta scans don't count as joins: they are the driver
           iterating the delta, and counting per execution would make
           the tally depend on how the delta was partitioned across
           domains (see Parexec) instead of on the work done. *)
        match scan_rows.(i) with
        | Some rows -> List.iter row_action.(i) rows
        | None -> (
          match rels.(i) with
          | None -> ()
          | Some rel ->
            if not sc.from_delta then Eval.bump stats.Eval.joins 1;
            if Array.length sc.positions = 0 then
              Relation.iter_packed row_action.(i) rel
            else if Array.length sc.positions = 1 then begin
              Eval.bump stats.Eval.index_hits 1;
              List.iter row_action.(i) (probe1.(i) (keyval sc.key.(0)))
            end
            else begin
              Eval.bump stats.Eval.index_hits 1;
              let key = keybuf.(i) in
              Array.iteri (fun j src -> key.(j) <- keyval src) sc.key;
              List.iter row_action.(i) (proben.(i) key)
            end))
      | Negcheck ng ->
        let present =
          match rels.(i) with
          | None -> false
          | Some rel ->
            Relation.mem rel (Array.to_list (Array.map build ng.args))
        in
        if not present then exec (i + 1)
      | Builtin b ->
        let a = Atom.make b.pred (Array.to_list (Array.map build b.args)) in
        if Eval.eval_builtin a then exec (i + 1)
      | UnifyEq u -> if pmatch u.pat (build u.bound) (-1) then exec (i + 1)
      | Cmpop c -> (
        match Literal.eval_cmp c.op (build c.left) (build c.right) with
        | Some true -> exec (i + 1)
        | Some false | None -> ())
      | Assign asg -> (
        match Literal.eval_expr (to_expr asg.expr) with
        | None -> ()
        | Some v -> if pmatch asg.pat v (-1) then exec (i + 1))
      | Aggregate ag ->
        let s =
          List.fold_left
            (fun s (x, slot) -> Subst.bind x env.(slot) s)
            Subst.empty ag.in_slots
        in
        List.iter
          (fun s' ->
            let all_out =
              List.for_all
                (fun (x, slot) ->
                  match Subst.find x s' with
                  | Some t ->
                    env.(slot) <- t;
                    env_ids.(slot) <- -1;
                    true
                  | None -> false)
                ag.out_slots
            in
            if all_out then exec (i + 1))
          (Eval.eval_agg stats ~neg s ag.agg)
  in
  (* Compile the per-op row callbacks. Splitting binds from residual
     patterns is sound: a variable's first occurrence in a scan is its
     [Pbind] (later ones compile to [Pcheck]), so running every plain
     bind first can only bind slots a residual pattern was going to
     read anyway, and residual patterns keep their column order so a
     bind nested in a [Papp] still precedes the checks derived from
     it. *)
  Array.iteri
    (fun i op ->
      match op with
      | Scan sc ->
        let ncols = Array.length sc.cols in
        let binds = ref [] in
        let others = ref [] in
        Array.iteri
          (fun j c ->
            match c with
            | Ckey -> ()
            | Cpat (Pbind s) -> binds := (j, s) :: !binds
            | Cpat p -> others := (j, p) :: !others)
          sc.cols;
        let binds = Array.of_list (List.rev !binds) in
        let others = Array.of_list (List.rev !others) in
        let nb = Array.length binds in
        let no = Array.length others in
        row_action.(i) <-
          (fun row ->
            Eval.bump stats.Eval.tuples_scanned 1;
            if Tuple.Packed.arity row = ncols then begin
              for k = 0 to nb - 1 do
                let j, s = binds.(k) in
                env.(s) <- Tuple.Packed.column row j;
                env_ids.(s) <- Tuple.Packed.column_id row j
              done;
              let ok = ref true in
              let k = ref 0 in
              while !ok && !k < no do
                let j, p = others.(!k) in
                if
                  not
                    (pmatch p
                       (Tuple.Packed.column row j)
                       (Tuple.Packed.column_id row j))
                then ok := false;
                incr k
              done;
              if !ok then exec (i + 1)
            end)
      | _ -> ())
    plan.ops;
  exec 0

let run ?stats ~db ~neg ?delta plan =
  let acc = ref [] in
  exec_plan ?stats ~db ~neg ?delta plan ~emit:(fun args _ids ->
      acc := Atom.make plan.head_pred (Array.to_list args) :: !acc);
  !acc

let derive ?stats ~db ~neg ?focus (r : Rule.t) =
  let focus_idx, delta =
    match focus with Some (i, d) -> (Some i, Some d) | None -> (None, None)
  in
  let plan = lookup ?stats r ~focus:focus_idx in
  run ?stats ~db ~neg ?delta plan

let focus_pred plan = plan.focus_pred

(* A plan can stream rows straight into its head relation while it
   executes iff doing so can never mutate a structure the executor is
   iterating. Delta scans read an immutable row list, keyed scans read
   immutable bucket snapshots, and negation/builtin steps are point
   queries — only a full scan of the head relation itself (Hashtbl
   iteration) and aggregate subqueries (which re-enter the interpreter
   over the database) are unsafe under concurrent insertion. *)
let streamable plan =
  Array.for_all
    (fun op ->
      match op with
      | Scan sc ->
        sc.from_delta
        || Array.length sc.positions > 0
        || not (String.equal sc.pred plan.head_pred)
      | Aggregate _ -> false
      | Negcheck _ | Builtin _ | UnifyEq _ | Cmpop _ | Assign _ -> true)
    plan.ops

(* ------------------------------------------------------------------ *)
(* Parallel-execution support (Parexec). A plan may run concurrently on
   several domains iff executing it cannot mutate shared state:
   aggregate ops re-enter the interpreter ([Eval.eval_agg] →
   [Relation.select]), which builds indexes lazily — everything else is
   read-only once the probed indexes are warm. *)

let parallel_safe plan =
  Array.for_all
    (fun op -> match op with Aggregate _ -> false | _ -> true)
    plan.ops

(* Whether a non-focus scan reads the plan's own head predicate (the
   non-linear case, e.g. tc(x,y) :- Δtc(x,z), tc(z,y)). Such a plan
   must not stream: streamed emissions become visible to its own later
   probes within the round, so streamed and buffered execution — and
   hence sequential and partitioned-parallel execution — could derive
   different (earlier) facts and diverge on round counts. *)
let reads_own_head plan =
  Array.exists
    (fun op ->
      match op with
      | Scan sc -> (not sc.from_delta) && String.equal sc.pred plan.head_pred
      | _ -> false)
    plan.ops

(* Build-and-sync every index the plan probes, so that concurrent
   executions find [ensure_synced] a no-op (see Relation.warm_exact).
   Called on the coordinating domain before a fan-out. *)
let warm ~db plan =
  Array.iter
    (fun op ->
      match op with
      | Scan sc when (not sc.from_delta) && Array.length sc.positions > 0 -> (
        match Database.relation_opt db sc.pred with
        | Some rel -> Relation.warm_exact rel ~positions:sc.positions
        | None -> ())
      | _ -> ())
    plan.ops

(* The column of the delta scan to hash-partition delta rows by: the
   first column the scan binds (a [Pbind] — constants filter, checks
   cannot occur first in a focus plan). [None] when the delta literal
   is all constants; the caller falls back to whole-row hashing. *)
let partition_column plan =
  let found = ref None in
  (try
     Array.iter
       (fun op ->
         match op with
         | Scan sc when sc.from_delta ->
           Array.iteri
             (fun j c ->
               match c with
               | Cpat (Pbind _) when !found = None -> found := Some j
               | _ -> ())
             sc.cols;
           raise Exit
         | _ -> ())
       plan.ops
   with Exit -> ());
  !found

let run_stream ?stats ~max_term_depth ~db ~neg ?delta ?delta_rows plan ~emit =
  let suppressed = ref 0 in
  exec_plan ?stats ~db ~neg ?delta ?delta_rows plan ~emit:(fun args ids ->
      (* Depth-guard before packing: suppressed skolem towers must not
         be interned into the (permanent) term pool. *)
      let deep = ref false in
      for j = 0 to Array.length args - 1 do
        if Term.depth args.(j) > max_term_depth then deep := true
      done;
      if !deep then incr suppressed
      else emit (Tuple.Packed.of_parts args ids));
  !suppressed

let run_rows ?stats ~max_term_depth ~db ~neg ?delta ?delta_rows plan =
  let rows = ref [] in
  let suppressed =
    run_stream ?stats ~max_term_depth ~db ~neg ?delta ?delta_rows plan
      ~emit:(fun row -> rows := row :: !rows)
  in
  (!rows, suppressed)

let derive_rows ?stats ~max_term_depth ~db ~neg ?focus (r : Rule.t) =
  let focus_idx, delta =
    match focus with Some (i, d) -> (Some i, Some d) | None -> (None, None)
  in
  let plan = lookup ?stats r ~focus:focus_idx in
  run_rows ?stats ~max_term_depth ~db ~neg ?delta plan
