(** Tabled top-down (goal-directed) evaluation — the strategy of the
    XSB engine underneath FLORA, which the paper used to run its
    prototype. Where {!Engine.materialize} computes the whole model,
    [solve] explores only the calls reachable from one query, memoising
    each call in a table; on selective queries over large extents
    (e.g. [tc(a, Y)] on a big graph) this is asymptotically cheaper.

    Supported fragment: stratified programs without aggregate literals
    and without function symbols in rule heads (use the bottom-up
    engine for those). Negative literals are solved by completing the
    called table first, which stratification makes safe. *)

exception Unsupported of string

type stats = {
  mutable calls : int;      (** distinct tabled calls *)
  mutable answers : int;    (** answers across all tables *)
  mutable resolutions : int;  (** rule-resolution steps *)
}

val new_stats : unit -> stats

val solve :
  ?stats:stats ->
  ?max_rounds:int ->
  Program.t ->
  Database.t ->
  Logic.Atom.t ->
  Tuple.t list
(** [solve p edb goal] — all ground instances of [goal] entailed by the
    program over the EDB, sorted. Raises {!Unsupported} for aggregate
    rules, head function symbols, or unstratified negation;
    [Failure] if [max_rounds] is exceeded. *)

val solve_many :
  ?stats:stats ->
  ?max_rounds:int ->
  Program.t ->
  Database.t ->
  Logic.Atom.t list ->
  Tuple.t list list
(** Solve several goals against one shared table space. *)
