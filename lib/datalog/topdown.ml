module Term = Logic.Term
module Atom = Logic.Atom
module Literal = Logic.Literal
module Subst = Logic.Subst
module Unify = Logic.Unify
module Rule = Logic.Rule

exception Unsupported of string

type stats = {
  mutable calls : int;
  mutable answers : int;
  mutable resolutions : int;
}

let new_stats () = { calls = 0; answers = 0; resolutions = 0 }

type table = {
  pattern : Atom.t;            (* normalized call *)
  results : Tuple.Hashset.t;   (* ground argument tuples *)
}

type state = {
  tables : (string, table) Hashtbl.t;
  rules_of : string -> Rule.t list;
  idb : (string, unit) Hashtbl.t;
  strata : (string, int) Hashtbl.t;
  edb : Database.t;
  stats : stats;
  max_rounds : int;
  mutable fresh : int;
  mutable version : int;  (* bumped on every table creation / answer *)
}

(* ------------------------------------------------------------------ *)
(* Validation *)

let validate p =
  List.iter
    (fun (r : Rule.t) ->
      if
        List.exists
          (fun t -> match t with Term.App _ -> true | _ -> false)
          r.Rule.head.Atom.args
      then
        raise
          (Unsupported
             (Printf.sprintf "head function symbol in %s" (Rule.to_string r)));
      List.iter
        (fun l ->
          match l with
          | Literal.Agg _ ->
            raise
              (Unsupported
                 (Printf.sprintf "aggregate literal in %s" (Rule.to_string r)))
          | _ -> ())
        r.Rule.body)
    (Program.rules p);
  match Stratify.stratify p with
  | Stratify.Stratified strata ->
    let tbl = Hashtbl.create 32 in
    List.iteri
      (fun i preds -> List.iter (fun q -> Hashtbl.replace tbl q i) preds)
      strata;
    tbl
  | Stratify.Unstratified cycle ->
    raise
      (Unsupported
         ("unstratified negation through " ^ String.concat ", " cycle))

(* ------------------------------------------------------------------ *)
(* Call normalization *)

let normalize (a : Atom.t) =
  let mapping = Hashtbl.create 4 in
  let k = ref 0 in
  let rec norm t =
    match t with
    | Term.Var x -> (
      match Hashtbl.find_opt mapping x with
      | Some v -> v
      | None ->
        let v = Term.var (Printf.sprintf "V%d" !k) in
        incr k;
        Hashtbl.add mapping x v;
        v)
    | Term.Const _ -> t
    | Term.App (f, args) -> Term.App (f, List.map norm args)
  in
  Atom.make a.Atom.pred (List.map norm a.Atom.args)

let key_of a = Atom.to_string (normalize a)

let ensure_table state a =
  let key = key_of a in
  match Hashtbl.find_opt state.tables key with
  | Some t -> t
  | None ->
    let t = { pattern = normalize a; results = Tuple.Hashset.create 16 } in
    Hashtbl.add state.tables key t;
    state.stats.calls <- state.stats.calls + 1;
    state.version <- state.version + 1;
    t

let add_answer state table tuple =
  if Tuple.Hashset.add table.results (Tuple.Packed.of_list tuple) then begin
    state.stats.answers <- state.stats.answers + 1;
    state.version <- state.version + 1
  end

(* ------------------------------------------------------------------ *)
(* Resolution *)

let rec extend_call state s (a : Atom.t) =
  (* positive literal over a derived predicate: consult (and create) the
     table for the instantiated call. *)
  let a' = Atom.apply s a in
  let table = ensure_table state a' in
  Tuple.Hashset.fold
    (fun row acc ->
      match
        Unify.matches_list ~init:s ~patterns:a'.Atom.args
          (Tuple.Packed.to_list row)
      with
      | Some s' -> s' :: acc
      | None -> acc)
    table.results []

and stratum_of state pred =
  match Hashtbl.find_opt state.strata pred with Some s -> s | None -> 0

and solve_body state ~head_stratum s0 lits =
  (* Greedy evaluable-first ordering, mirroring Eval.solve_body. *)
  let module SS = Set.Make (String) in
  let lits = Array.of_list lits in
  let n = Array.length lits in
  let used = Array.make n false in
  let rec step bound ss remaining =
    if remaining = 0 || ss = [] then ss
    else begin
      let evaluable i =
        (not used.(i))
        &&
        match lits.(i) with
        | Literal.Cmp (Literal.Eq, t1, t2) ->
          List.for_all (fun x -> SS.mem x bound) (Term.vars t1)
          || List.for_all (fun x -> SS.mem x bound) (Term.vars t2)
        | l -> List.for_all (fun x -> SS.mem x bound) (Literal.needs l)
      in
      let pick = ref (-1) in
      for i = 0 to n - 1 do
        if evaluable i && !pick = -1 then pick := i
      done;
      if !pick = -1 then invalid_arg "Topdown: body not range-restricted"
      else begin
        let i = !pick in
        used.(i) <- true;
        let lit = lits.(i) in
        let ss' =
          match lit with
          | Literal.Pos a when Literal.is_builtin a.Atom.pred ->
            List.filter (fun s -> Eval.eval_builtin (Atom.apply s a)) ss
          | Literal.Pos a when Hashtbl.mem state.idb a.Atom.pred ->
            List.concat_map (fun s -> extend_call state s a) ss
          | Literal.Pos a ->
            (* extensional *)
            List.concat_map
              (fun s ->
                let pattern = List.map (Subst.apply s) a.Atom.args in
                match Database.relation_opt state.edb a.Atom.pred with
                | None -> []
                | Some rel ->
                  Relation.select rel ~pattern
                  |> List.filter_map (fun tup ->
                         Unify.matches_list ~init:s ~patterns:pattern tup))
              ss
          | Literal.Neg a ->
            List.filter
              (fun s ->
                let a' = Atom.apply s a in
                if Hashtbl.mem state.idb a'.Atom.pred then begin
                  (* complete the called table before testing absence;
                     stratification puts it strictly below the head, so
                     the sub-fixpoint (restricted to lower strata) nests
                     at most #strata deep *)
                  ignore (ensure_table state a');
                  run_fixpoint state ~below:head_stratum;
                  let table = ensure_table state a' in
                  match Tuple.Packed.probe a'.Atom.args with
                  | Some row -> not (Tuple.Hashset.mem table.results row)
                  | None -> true
                end
                else not (Database.mem state.edb a'))
              ss
          | Literal.Cmp (Literal.Eq, t1, t2) ->
            List.filter_map
              (fun s -> Unify.unify ~init:s (Subst.apply s t1) (Subst.apply s t2))
              ss
          | Literal.Cmp (op, t1, t2) ->
            List.filter
              (fun s ->
                match
                  Literal.eval_cmp op (Subst.apply s t1) (Subst.apply s t2)
                with
                | Some b -> b
                | None -> false)
              ss
          | Literal.Assign (t, e) ->
            List.filter_map
              (fun s ->
                match Literal.eval_expr (Literal.apply_expr s e) with
                | None -> None
                | Some value -> Unify.unify ~init:s (Subst.apply s t) value)
              ss
          | Literal.Agg _ -> assert false (* rejected by validate *)
        in
        let bound' =
          List.fold_left (fun acc x -> SS.add x acc) bound (Literal.binds lit)
        in
        step bound' ss' (remaining - 1)
      end
    end
  in
  let bound0 =
    (* variables bound to *ground* terms by the call substitution: a
       head variable unified with an open call-pattern variable is not
       safe for negation or comparison yet. *)
    List.fold_left
      (fun acc (x, t) -> if Term.is_ground t then SS.add x acc else acc)
      SS.empty (Subst.bindings s0)
  in
  step bound0 [ s0 ] n

and process_table state table =
  let head_atom = table.pattern in
  let head_stratum = stratum_of state head_atom.Atom.pred in
  List.iter
    (fun (r : Rule.t) ->
      state.fresh <- state.fresh + 1;
      let r = Rule.rename_apart ~suffix:(Printf.sprintf "_r%d" state.fresh) r in
      match Atom.unify r.Rule.head head_atom with
      | None -> ()
      | Some s0 ->
        state.stats.resolutions <- state.stats.resolutions + 1;
        let solutions = solve_body state ~head_stratum s0 r.Rule.body in
        List.iter
          (fun s ->
            let answer = Atom.apply s head_atom in
            if Atom.is_ground answer then add_answer state table answer.Atom.args)
          solutions)
    (state.rules_of head_atom.Atom.pred)

(* [below]: only process tables of strata strictly below the bound —
   the sub-fixpoint evaluating a negated call. [max_int] = everything. *)
and run_fixpoint ?(below = max_int) state =
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr rounds;
    if !rounds > state.max_rounds then
      failwith "Topdown.run_fixpoint: max_rounds exceeded";
    let v0 = state.version in
    let snapshot =
      Hashtbl.fold
        (fun _ t acc ->
          if stratum_of state t.pattern.Atom.pred < below then t :: acc
          else acc)
        state.tables []
    in
    List.iter (process_table state) snapshot;
    continue_ := state.version <> v0
  done

(* ------------------------------------------------------------------ *)

let make_state ?(stats = new_stats ()) ?(max_rounds = 100_000) p edb =
  let strata = validate p in
  let by_pred = Hashtbl.create 32 in
  let idb = Hashtbl.create 32 in
  List.iter
    (fun (r : Rule.t) ->
      let pred = Rule.head_pred r in
      Hashtbl.replace idb pred ();
      match Hashtbl.find_opt by_pred pred with
      | Some l -> l := r :: !l
      | None -> Hashtbl.add by_pred pred (ref [ r ]))
    (Program.rules p);
  {
    tables = Hashtbl.create 64;
    rules_of =
      (fun pred ->
        match Hashtbl.find_opt by_pred pred with
        | Some l -> List.rev !l
        | None -> []);
    idb;
    strata;
    edb;
    stats;
    max_rounds;
    fresh = 0;
    version = 0;
  }

let answers_for state goal =
  let table = ensure_table state goal in
  run_fixpoint state;
  Tuple.Hashset.fold
    (fun row acc ->
      let tuple = Tuple.Packed.to_list row in
      match Unify.matches_list ~patterns:goal.Atom.args tuple with
      | Some _ -> tuple :: acc
      | None -> acc)
    table.results []
  |> List.sort Tuple.compare

let solve ?stats ?max_rounds p edb goal =
  let facts, p = Program.split_facts p in
  let edb =
    if facts = [] then edb
    else begin
      let db = Database.copy edb in
      List.iter (fun f -> ignore (Database.add_fact db f)) facts;
      db
    end
  in
  let state = make_state ?stats ?max_rounds p edb in
  if Hashtbl.mem state.idb goal.Atom.pred then answers_for state goal
  else
    (* purely extensional goal *)
    (match Database.relation_opt edb goal.Atom.pred with
    | None -> []
    | Some rel ->
      Relation.select rel ~pattern:goal.Atom.args |> List.sort Tuple.compare)

let solve_many ?stats ?max_rounds p edb goals =
  let facts, p = Program.split_facts p in
  let edb =
    if facts = [] then edb
    else begin
      let db = Database.copy edb in
      List.iter (fun f -> ignore (Database.add_fact db f)) facts;
      db
    end
  in
  let state = make_state ?stats ?max_rounds p edb in
  List.map
    (fun goal ->
      if Hashtbl.mem state.idb goal.Atom.pred then answers_for state goal
      else
        match Database.relation_opt edb goal.Atom.pred with
        | None -> []
        | Some rel ->
          Relation.select rel ~pattern:goal.Atom.args |> List.sort Tuple.compare)
    goals
