module Term = Logic.Term

type t = {
  mutable tuples : Tuple.Set.t;
  indexes : (int, (Term.t, Tuple.t list ref) Hashtbl.t) Hashtbl.t;
}

let create ?hint:(_ = 16) () =
  { tuples = Tuple.Set.empty; indexes = Hashtbl.create 4 }

let cardinal r = Tuple.Set.cardinal r.tuples
let is_empty r = Tuple.Set.is_empty r.tuples
let mem r tup = Tuple.Set.mem tup r.tuples

let index_insert idx key tup =
  match Hashtbl.find_opt idx key with
  | Some bucket -> bucket := tup :: !bucket
  | None -> Hashtbl.add idx key (ref [ tup ])

let add r tup =
  if not (Tuple.is_ground tup) then
    invalid_arg
      (Format.asprintf "Relation.add: non-ground tuple %a" Tuple.pp tup);
  if Tuple.Set.mem tup r.tuples then false
  else begin
    r.tuples <- Tuple.Set.add tup r.tuples;
    Hashtbl.iter
      (fun pos idx ->
        match List.nth_opt tup pos with
        | Some key -> index_insert idx key tup
        | None -> ())
      r.indexes;
    true
  end

let remove r tup =
  if Tuple.Set.mem tup r.tuples then begin
    r.tuples <- Tuple.Set.remove tup r.tuples;
    (* drop the tuple from every live index bucket in place — removal is
       a hot path under incremental maintenance, and a full index reset
       would make the next lookup rebuild from scratch *)
    Hashtbl.iter
      (fun pos idx ->
        match List.nth_opt tup pos with
        | Some key -> (
          match Hashtbl.find_opt idx key with
          | Some bucket ->
            bucket := List.filter (fun t -> Tuple.compare t tup <> 0) !bucket
          | None -> ())
        | None -> ())
      r.indexes;
    true
  end
  else false

let iter f r = Tuple.Set.iter f r.tuples
let fold f r init = Tuple.Set.fold f r.tuples init
let to_list r = Tuple.Set.elements r.tuples
let tuples r = r.tuples

let ensure_index r pos =
  match Hashtbl.find_opt r.indexes pos with
  | Some idx -> idx
  | None ->
    let idx = Hashtbl.create (max 16 (cardinal r)) in
    Tuple.Set.iter
      (fun tup ->
        match List.nth_opt tup pos with
        | Some key -> index_insert idx key tup
        | None -> ())
      r.tuples;
    Hashtbl.add r.indexes pos idx;
    idx

let warm_index r ~pos = ignore (ensure_index r pos)

let lookup r ~pos key =
  let idx = ensure_index r pos in
  match Hashtbl.find_opt idx key with Some bucket -> !bucket | None -> []

let matches_pattern pattern tup =
  match Logic.Unify.matches_list ~patterns:pattern tup with
  | Some _ -> true
  | None -> false

let select r ~pattern =
  let ground_pos =
    List.mapi (fun i t -> (i, t)) pattern
    |> List.find_opt (fun (_, t) -> Term.is_ground t)
  in
  let candidates =
    match ground_pos with
    | Some (pos, key) -> lookup r ~pos key
    | None -> to_list r
  in
  List.filter (matches_pattern pattern) candidates

let copy r = { tuples = r.tuples; indexes = Hashtbl.create 4 }

let of_list tups =
  let r = create () in
  List.iter (fun tup -> ignore (add r tup)) tups;
  r

let pp ppf r =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Tuple.pp)
    (to_list r)
