module Term = Logic.Term
module Packed = Tuple.Packed

(* A multi-column hash index over a bound-position signature: rows are
   bucketed by the intern ids of the columns listed in [positions]
   (strictly increasing). Selectivity is estimated as the number of
   distinct keys; a superset signature is always at least as selective.
   Rows too short for the signature are simply not indexed (they cannot
   match a pattern of that shape). Single-column signatures — the
   overwhelmingly common case — key their table on the plain intern id,
   so probes hash an int instead of an int array. *)
type tbl =
  | T1 of (int, Packed.t list ref) Hashtbl.t
  | Tn of (int array, Packed.t list ref) Hashtbl.t

(* [seen] counts how many rows of the owning relation's insertion log
   this index has integrated: index maintenance is lazy. Inserts append
   to the relation's log (a cons per row); an index only pays the
   bucket work when it is actually probed, so an index that stops being
   probed (e.g. one built for a seed round over a then-empty IDB
   relation) costs nothing as the relation grows. *)
type index = { positions : int array; table : tbl; mutable seen : int }

let tbl_length = function
  | T1 h -> Hashtbl.length h
  | Tn h -> Hashtbl.length h

let tbl_find idx (key : int array) =
  match idx.table with
  | T1 h -> Hashtbl.find_opt h key.(0)
  | Tn h -> Hashtbl.find_opt h key

type t = {
  rows : Tuple.Hashset.t;
  mutable indexes : index list;
  mutable log : Packed.t list;  (* newest first; only fed while indexes exist *)
  mutable nlog : int;
}

let create ?(hint = 16) () =
  { rows = Tuple.Hashset.create hint; indexes = []; log = []; nlog = 0 }

let cardinal r = Tuple.Hashset.cardinal r.rows
let is_empty r = Tuple.Hashset.is_empty r.rows

let mem_packed r p = Tuple.Hashset.mem r.rows p

let mem r tup =
  match Packed.probe tup with
  | Some p -> mem_packed r p
  | None -> false

let covers idx (p : Packed.t) =
  let n = Array.length idx.positions in
  n = 0 || idx.positions.(n - 1) < Packed.arity p

let bucket_add h key p =
  match Hashtbl.find_opt h key with
  | Some bucket -> bucket := p :: !bucket
  | None -> Hashtbl.add h key (ref [ p ])

let index_insert idx p =
  if covers idx p then
    match idx.table with
    | T1 h -> bucket_add h (Packed.column_id p idx.positions.(0)) p
    | Tn h ->
      bucket_add h (Array.map (fun pos -> Packed.column_id p pos) idx.positions) p

(* Removal prunes buckets by physical equality: [add] inserts the one
   canonical row object into the row set and every index, so [p != q]
   is a constant-time exact test — no structural compares. *)
let bucket_prune h key p =
  match Hashtbl.find_opt h key with
  | Some bucket -> bucket := List.filter (fun q -> q != p) !bucket
  | None -> ()

let index_remove idx p =
  if covers idx p then
    match idx.table with
    | T1 h -> bucket_prune h (Packed.column_id p idx.positions.(0)) p
    | Tn h ->
      bucket_prune h
        (Array.map (fun pos -> Packed.column_id p pos) idx.positions)
        p

(* Integrate the log rows this index has not seen, oldest first, so
   bucket order matches what eager maintenance would have produced.
   Once every index is caught up the log is dropped ([nlog] keeps
   counting — [seen] compares against it, not against the list). *)
let sync r idx =
  let rec take k l acc =
    if k = 0 then acc
    else match l with [] -> acc | p :: rest -> take (k - 1) rest (p :: acc)
  in
  List.iter (fun p -> index_insert idx p) (take (r.nlog - idx.seen) r.log []);
  idx.seen <- r.nlog;
  if List.for_all (fun i -> i.seen = r.nlog) r.indexes then r.log <- []

let ensure_synced r idx = if idx.seen < r.nlog then sync r idx

let add_packed r p =
  if Tuple.Hashset.add r.rows p then begin
    if r.indexes <> [] then begin
      r.log <- p :: r.log;
      r.nlog <- r.nlog + 1
    end;
    true
  end
  else false

let load_packed r p =
  Tuple.Hashset.add_new r.rows p;
  if r.indexes <> [] then begin
    r.log <- p :: r.log;
    r.nlog <- r.nlog + 1
  end

let add r tup =
  if not (Tuple.is_ground tup) then
    invalid_arg
      (Format.asprintf "Relation.add: non-ground tuple %a" Tuple.pp tup);
  add_packed r (Packed.of_list tup)

let remove r tup =
  match Packed.probe tup with
  | None -> false
  | Some probe -> (
    match Tuple.Hashset.find r.rows probe with
    | None -> false
    | Some canonical ->
      ignore (Tuple.Hashset.remove r.rows canonical);
      (* catch every index up before pruning: a pending logged insert
         of this very row must not resurface after the removal *)
      List.iter (fun idx -> ensure_synced r idx) r.indexes;
      List.iter (fun idx -> index_remove idx canonical) r.indexes;
      true)

let iter_packed f r = Tuple.Hashset.iter f r.rows
let fold_packed f r init = Tuple.Hashset.fold f r.rows init
let iter f r = iter_packed (fun p -> f (Packed.to_list p)) r
let fold f r init = fold_packed (fun p acc -> f (Packed.to_list p) acc) r init

(* sorted for deterministic output: hash-set iteration order is not
   stable, but printed/enumerated extents should be *)
let to_list r = fold (fun tup acc -> tup :: acc) r [] |> List.sort Tuple.compare

let build_index r positions =
  let size = max 16 (cardinal r) in
  let table =
    if Array.length positions = 1 then T1 (Hashtbl.create size)
    else Tn (Hashtbl.create size)
  in
  (* a fresh index iterates the full row set, so it is born caught-up *)
  let idx = { positions; table; seen = r.nlog } in
  iter_packed (fun p -> index_insert idx p) r;
  r.indexes <- idx :: r.indexes;
  idx

let find_index r positions =
  List.find_opt (fun idx -> idx.positions = positions) r.indexes

let ensure_index r positions =
  match find_index r positions with
  | Some idx -> idx
  | None -> build_index r positions

let warm_index r ~pos = ignore (ensure_index r [| pos |])

(* Build *and* catch up the index so that, as long as the relation is
   not mutated afterwards, concurrent probes are read-only:
   [ensure_synced] sees [idx.seen = r.nlog] and becomes a no-op. The
   parallel executor (Parexec) warms every index a plan probes before
   fanning work out to the domain pool. *)
let warm_exact r ~positions =
  let idx = ensure_index r positions in
  ensure_synced r idx

let lookup_key r ~positions key =
  let idx = ensure_index r positions in
  ensure_synced r idx;
  match tbl_find idx key with
  | Some bucket -> !bucket
  | None -> []

let lookup_key1 r ~pos k =
  let idx = ensure_index r [| pos |] in
  ensure_synced r idx;
  match idx.table with
  | T1 h -> ( match Hashtbl.find_opt h k with Some b -> !b | None -> [])
  | Tn _ -> assert false

(* Probe closures capture the index table directly, so a caller issuing
   many probes (the plan executor) pays the index resolution — the walk
   over [r.indexes] plus a signature compare — once instead of per
   probe. Index tables are updated in place by [add]/[remove] and never
   replaced, so a probe stays valid across interleaved mutations. *)
let prober1 r ~pos =
  let idx = ensure_index r [| pos |] in
  match idx.table with
  | T1 h ->
    fun k ->
      ensure_synced r idx;
      (match Hashtbl.find_opt h k with Some b -> !b | None -> [])
  | Tn _ -> assert false

let prober r ~positions =
  let idx = ensure_index r positions in
  match idx.table with
  | T1 h -> (
    fun key ->
      ensure_synced r idx;
      match Hashtbl.find_opt h key.(0) with Some b -> !b | None -> [])
  | Tn h -> (
    fun key ->
      ensure_synced r idx;
      match Hashtbl.find_opt h key with Some b -> !b | None -> [])

let lookup r ~pos key =
  match Term.find_id key with
  | None -> []
  | Some k -> List.map Packed.to_list (lookup_key1 r ~pos k)

let matches_pattern pattern tup =
  match Logic.Unify.matches_list ~patterns:pattern tup with
  | Some _ -> true
  | None -> false

(* The signature of a pattern: every ground position, with its id —
   [None] when a ground component was never interned (no row matches). *)
let ground_signature pattern =
  let rec go i acc = function
    | [] -> Some (List.rev acc)
    | t :: rest ->
      if Term.is_ground t then
        match Term.find_id t with
        | Some k -> go (i + 1) ((i, k) :: acc) rest
        | None -> None
      else go (i + 1) acc rest
  in
  go 0 [] pattern

let select_packed r ~pattern =
  match ground_signature pattern with
  | None -> []
  | Some [] -> fold_packed (fun p acc -> p :: acc) r []
  | Some sig_ ->
    let positions = Array.of_list (List.map fst sig_) in
    let key = Array.of_list (List.map snd sig_) in
    (* Prefer the exact-signature index (maximal selectivity: one probe
       pins every ground column). If only narrower indexes exist, take
       the subset index with the highest distinct-key count; build the
       exact index when nothing covers the pattern. Signatures come
       from rule shapes, so the set of indexes per relation stays
       small. *)
    (match find_index r positions with
    | Some idx -> (idx, key)
    | None ->
      let subset idx =
        Array.for_all
          (fun p -> List.mem_assoc p sig_)
          idx.positions
        && Array.length idx.positions > 0
      in
      let candidates = List.filter subset r.indexes in
      let best =
        List.fold_left
          (fun acc idx ->
            match acc with
            | Some b when tbl_length b.table >= tbl_length idx.table -> acc
            | _ -> Some idx)
          None candidates
      in
      match best with
      | Some idx when 2 * tbl_length idx.table >= cardinal r ->
        (* the narrower index is already near-unique on this relation:
           probing it beats paying a fresh index build *)
        (idx, Array.map (fun p -> List.assoc p sig_) idx.positions)
      | _ ->
        let idx = build_index r positions in
        (idx, key))
    |> fun (idx, key) ->
    ensure_synced r idx;
    (match tbl_find idx key with
    | Some bucket -> !bucket
    | None -> [])

let select r ~pattern =
  select_packed r ~pattern
  |> List.filter_map (fun p ->
         let tup = Packed.to_list p in
         if matches_pattern pattern tup then Some tup else None)

let copy r =
  {
    rows = Tuple.Hashset.copy r.rows;
    (* clone index tables (buckets included) so post-copy lookups reuse
       the built indexes without aliasing mutations across copies *)
    indexes =
      List.map
        (fun idx ->
          let clone h =
            let t = Hashtbl.create (Hashtbl.length h) in
            Hashtbl.iter (fun key bucket -> Hashtbl.add t key (ref !bucket)) h;
            t
          in
          let table =
            match idx.table with T1 h -> T1 (clone h) | Tn h -> Tn (clone h)
          in
          { positions = idx.positions; table; seen = idx.seen })
        r.indexes;
    log = r.log;
    nlog = r.nlog;
  }

let of_list tups =
  let r = create () in
  List.iter (fun tup -> ignore (add r tup)) tups;
  r

let pp ppf r =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Tuple.pp)
    (to_list r)
