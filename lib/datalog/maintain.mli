(** Incremental view maintenance for stratified materializations.

    A {!t} wraps an already-materialized stratified database together
    with its program and base (extensional) facts, and keeps the
    materialization consistent under batches of EDB insertions and
    deletions ({!apply}) and under monotone program growth
    ({!extend_rules}) — without recomputing unchanged strata.

    Per stratum, the maintenance walk picks the cheapest sound path:

    - {b skip} — no body predicate of the stratum changed extent;
    - {b propagate} — only positive dependencies changed: deletions run
      delete-and-rederive (DRed: over-delete the consequences of the
      removed facts, then re-derive survivors that still have an
      alternative proof), insertions re-run the semi-naive [focus]
      joins seeded with the accumulated delta;
    - {b recompute} — a predicate read under negation (or inside an
      aggregate) changed: the stratum is rebuilt from the maintained
      strata below it, and the diff against its old extent continues
      upward as the delta.

    This is the engine half of the mediator's registration/anchoring
    lifecycle (paper Fig. 3): a source pushing new observations, or a
    newly registered source contributing facts, anchor rules and schema
    rules, becomes a delta absorbed in time proportional to its
    consequences rather than to the whole mediated object base. *)

type delta = { additions : Logic.Atom.t list; deletions : Logic.Atom.t list }

val delta :
  ?additions:Logic.Atom.t list -> ?deletions:Logic.Atom.t list -> unit -> delta

val delta_is_empty : delta -> bool

type action = Skipped | Propagated | Recomputed

type stratum_report = {
  stratum : int;   (** stratum index *)
  action : action;
  delta_in : int;  (** accumulated delta size when the stratum was reached *)
  added : int;     (** facts of this stratum's predicates added *)
  removed : int;
  rounds : int;
}

type report = {
  added : int;     (** net facts added (EDB delta + derived) *)
  removed : int;
  rounds : int;
  strata : int;
  skipped : int;
  recomputed : int;
  skolems_suppressed : int;
  joins : int;
  tuples_scanned : int;
  index_hits : int;       (** join steps answered via an index probe *)
  plan_cache_hits : int;  (** compiled-plan lookups answered from cache *)
  parallel_batches : int;
      (** propagation/rebuild batches fanned out across the domain
          pool (0 when the handle has no pool or nothing reached the
          {!Parexec.min_rows} threshold) *)
  touched : string list;
      (** predicates whose extent changed — the precise invalidation
          set for result caches layered on top *)
  per_stratum : stratum_report list;
}

type t

val init :
  ?max_term_depth:int ->
  ?max_rounds:int ->
  ?compiled:bool ->
  ?pool:Pool.t ->
  ?prune:(Logic.Rule.t list -> Database.t -> Logic.Rule.t list) ->
  ?minimize:(Logic.Rule.t list -> Logic.Rule.t list) ->
  Program.t ->
  Database.t ->
  (t, string) result
(** Materialize [p] over a copy of the EDB and return the maintenance
    handle. [Error] if the program is not stratified (maintenance has
    no well-founded fallback — use {!Engine.materialize} for those).

    [prune] is the same dead-rule hook as {!Engine.config.prune} and
    must only drop rules that derive nothing over the given base. It
    speeds up the {e initial} materialization only: the handle keeps
    the full rule set, because a delta may revive a pruned rule — and
    then every new instantiation involves a delta fact, which the
    semi-naive focus joins (and stratum recomputation) of {!apply}
    cover, so maintained results still equal a full rebuild.

    [minimize] is the semantic-minimization hook of
    {!Engine.config.minimize}. Unlike [prune], its rewrites must be
    equivalence-preserving for {e every} database (containment modulo
    invariants deltas cannot break, e.g. the domain map), so the
    minimized rules replace the originals in the handle and deltas
    maintain the smaller bodies too.

    [pool] parallelizes the initial materialization, insertion
    propagation and stratum rebuilds across a domain pool for the
    lifetime of the handle ({!Parexec}; compiled path only — DRed
    over-deletion stays sequential, its batches interleave with
    deletions). Maintained results and report counters are identical
    with and without it. *)

val of_materialized :
  ?max_term_depth:int ->
  ?max_rounds:int ->
  ?compiled:bool ->
  ?pool:Pool.t ->
  ?edb:Database.t ->
  ?prewarm:bool ->
  Program.t ->
  Database.t ->
  (t, string) result
(** Adopt an existing materialization of [p] (as produced by
    {!Engine.materialize}) without recomputing it; the database is
    maintained in place. With [?edb] (a checkpoint's base database,
    {!Snapshot}) the base facts are exactly those, copied. Without it
    they are reconstructed as the extents of non-IDB predicates plus
    the ground facts of [p] itself — external EDB facts for predicates
    that also head rules are not representable that way; use {!init} or
    pass [?edb] when you have them.

    [?prewarm] (default [true]) eagerly builds every join index the
    maintenance passes could need. Pass [false] when the handle will
    absorb one delta and be dropped — recovery replay — so only the
    indexes that delta actually probes get built, lazily. *)

val apply : t -> delta -> (report, string) result
(** Absorb a batch of base-fact changes. Deletions are applied before
    insertions. Delta predicates may also be defined by rules (the
    mediator asserts source data on the same declared predicates its
    anchor rules write): an addition asserts a base fact, and a
    deletion retracts a base assertion — the fact itself survives when
    the rules still prove it, so the result always equals a full
    materialization over the updated base. [Error] (leaving the handle
    untouched) if a delta fact is non-ground. *)

val extend_rules : t -> ?delta:delta -> Logic.Rule.t list -> (report, string) result
(** Grow the program by [new_rules] (plus an optional EDB delta in the
    same pass), re-stratify, and absorb the consequences: strata
    containing new rules seed them with one full evaluation and
    propagate semi-naively from there. [Error] (handle untouched) if a
    new rule is unsafe or the grown program loses stratification. *)

val db : t -> Database.t
(** The maintained materialization (shared, mutated by {!apply}). *)

val edb : t -> Database.t
(** The current base facts (shared; mutate only through {!apply}). *)

val rules : t -> Logic.Rule.t list
