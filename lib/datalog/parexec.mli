(** Partitioned-parallel execution of one compiled delta plan.

    The parallelism unit is a single (rule, focus) execution of one
    round's delta rows: the rows are hash-partitioned by the plan's
    first bound delta column ({!Plan.partition_column}), each partition
    runs {!Plan.run_rows} on a pool lane against the {e unchanged}
    database, and the per-partition buffers are merged in partition
    order before the driver absorbs them — sequentially, in rule
    order, exactly like the sequential path. Results and report
    counters are bit-identical to sequential evaluation (the
    determinism argument lives in DESIGN.md §13). *)

val min_rows : int ref
(** Deltas shorter than this run sequentially — fanning out a handful
    of rows costs more than it buys. Initialized from
    [KIND_PAR_MIN_ROWS] (default 16); tests lower it to force parallel
    coverage on small programs. *)

val eligible :
  pool:Pool.t option -> Plan.t -> Tuple.Packed.t list -> Pool.t option
(** The pool to fan out on, iff there is one, the plan is
    {!Plan.parallel_safe}, and the delta reaches {!min_rows}. *)

val run_delta :
  ?stats:Eval.stats ->
  pool:Pool.t ->
  max_term_depth:int ->
  db:Database.t ->
  neg:Database.t ->
  Plan.t ->
  delta_rows:Tuple.Packed.t list ->
  Tuple.Packed.t list * int
(** Parallel {!Plan.run_rows}: warms the plan's indexes
    ({!Plan.warm}), bumps [stats.parallel_batches], partitions
    [delta_rows] across the pool and returns the merged (rows,
    suppressed) exactly as the sequential call would. The caller must
    not mutate [db]/[neg] during the call and should only pass plans
    cleared by {!eligible}. *)
