(** A mutable extensional relation: a set of ground tuples of one
    predicate, with per-argument-position hash indexes built lazily and
    maintained incrementally. *)

type t

val create : ?hint:int -> unit -> t

val cardinal : t -> int
val is_empty : t -> bool

val mem : t -> Tuple.t -> bool

val add : t -> Tuple.t -> bool
(** [add r tup] inserts a ground tuple; returns [true] if it was new.
    Raises [Invalid_argument] on non-ground tuples. *)

val remove : t -> Tuple.t -> bool
(** [remove r tup] deletes a tuple; returns [true] if it was present.
    Indexes are invalidated and rebuilt lazily on the next lookup. *)

val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Tuple.t list
val tuples : t -> Tuple.Set.t

val lookup : t -> pos:int -> Logic.Term.t -> Tuple.t list
(** [lookup r ~pos key] returns the tuples whose [pos]-th component
    equals [key], using (and if needed building) the index on [pos]. *)

val warm_index : t -> pos:int -> unit
(** Build the index on [pos] now if absent. Indexes are otherwise
    created lazily by the first {!lookup} that needs them; a long-lived
    caller (incremental maintenance) warms the join positions up front
    so the first delta is not charged a full index build. *)

val select : t -> pattern:Logic.Term.t list -> Tuple.t list
(** Tuples matching the pattern (variables are wildcards, repeated
    variables must match equal components). Uses the most selective
    ground position as index key when one exists. *)

val copy : t -> t
val of_list : Tuple.t list -> t
val pp : Format.formatter -> t -> unit
