(** A mutable extensional relation: a hash set of packed ground rows
    (see {!Tuple.Packed}) with multi-column hash indexes over
    bound-position signatures, built lazily and maintained
    incrementally.

    Index choice is selectivity-aware: a lookup over a pattern uses the
    index on the pattern's exact ground-position signature when it
    exists (one probe pins every ground column), otherwise either a
    sufficiently selective narrower index (judged by distinct-key
    counts) or a freshly built exact one. *)

type t

val create : ?hint:int -> unit -> t

val cardinal : t -> int
val is_empty : t -> bool

val mem : t -> Tuple.t -> bool

val add : t -> Tuple.t -> bool
(** [add r tup] inserts a ground tuple; returns [true] if it was new.
    Raises [Invalid_argument] on non-ground tuples. Every live index is
    updated in place. *)

val remove : t -> Tuple.t -> bool
(** [remove r tup] deletes a tuple; returns [true] if it was present.
    Index buckets are pruned in place by physical equality on the
    canonical stored row — no structural compares. *)

val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> Tuple.t list
(** Sorted by {!Tuple.compare} (hash-set iteration order is not
    stable; enumerated extents stay deterministic). *)

(** {1 Packed access — the join kernel's view} *)

val mem_packed : t -> Tuple.Packed.t -> bool

val add_packed : t -> Tuple.Packed.t -> bool

val load_packed : t -> Tuple.Packed.t -> unit
(** [add_packed] minus the membership walk: only for bulk loads whose
    caller guarantees the row is absent (the snapshot reader filling a
    fresh relation from a deduplicated frame). Built indexes are kept
    in sync exactly as by {!add_packed}. *)

val iter_packed : (Tuple.Packed.t -> unit) -> t -> unit
val fold_packed : (Tuple.Packed.t -> 'a -> 'a) -> t -> 'a -> 'a

val lookup_key : t -> positions:int array -> int array -> Tuple.Packed.t list
(** [lookup_key r ~positions key] returns the rows whose columns at
    [positions] (strictly increasing) have exactly the intern ids
    [key], using (and if needed building) the index on that
    signature. *)

val lookup_key1 : t -> pos:int -> int -> Tuple.Packed.t list
(** Single-column [lookup_key]: probes the int-keyed table directly,
    no key array. *)

val prober1 : t -> pos:int -> int -> Tuple.Packed.t list
(** [prober1 r ~pos] resolves (building if needed) the single-column
    index once and returns a probe function over it. The probe stays
    valid across interleaved [add]/[remove] — index tables are mutated
    in place, never replaced. *)

val prober : t -> positions:int array -> int array -> Tuple.Packed.t list
(** Multi-column {!prober1}. The key array is read transiently per
    probe and may be reused by the caller. *)

(** {1 Term-level lookups} *)

val lookup : t -> pos:int -> Logic.Term.t -> Tuple.t list
(** [lookup r ~pos key] returns the tuples whose [pos]-th component
    equals [key], via the single-column index on [pos]. *)

val warm_index : t -> pos:int -> unit
(** Build the single-column index on [pos] now if absent. Indexes are
    otherwise created lazily by the first lookup that needs them; a
    long-lived caller (incremental maintenance) warms the join
    positions up front so the first delta is not charged a full index
    build. *)

val warm_exact : t -> positions:int array -> unit
(** Build {e and catch up} the index on exactly [positions]. After this
    call, probes through {!prober}/{!prober1} are read-only until the
    relation is next mutated — the property the parallel executor
    relies on to share a relation across domains ({!Parexec}). *)

val select : t -> pattern:Logic.Term.t list -> Tuple.t list
(** Tuples matching the pattern (variables are wildcards, repeated
    variables must match equal components). Uses the most selective
    applicable index when the pattern has ground components. *)

val copy : t -> t
(** Snapshot: rows and all built indexes are cloned, so lookups after a
    copy keep their indexes and mutations never alias across copies. *)

val of_list : Tuple.t list -> t
val pp : Format.formatter -> t -> unit
