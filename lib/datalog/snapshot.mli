(** Engine checkpoint: serialize a materialized {!Database.t} (plus the
    base-fact database a maintenance handle needs, and the report
    counters of the materialization that produced it) into a
    {!Codec}-framed file, and read it back.

    Ground terms are written once each into a file-local term table
    (structural encoding, children before parents) and tuples reference
    table indices — process-global intern ids ({!Logic.Term}) are never
    written, so a snapshot loads correctly into a process whose intern
    pool assigned different ids: the table is simply re-interned on
    load.

    The differential guarantee, exercised by [test/test_recovery.ml]:
    for every database [db], [restore (checkpoint db)] satisfies
    {!Database.equal} against [db]. *)

type t = {
  db : Database.t;  (** the materialized model (EDB + IDB) *)
  edb : Database.t;  (** the base facts, for re-adopting maintenance *)
  counters : (string * float) list;
      (** report counters of the checkpointed materialization *)
}

val magic : string

val encode : t -> string
(** The complete file image, header included. *)

val decode : string -> (t, string) result
(** [Error] on a wrong magic/version, a torn or corrupted frame
    anywhere (a checkpoint is written atomically, so an incomplete one
    is invalid as a whole — unlike a WAL there is no trustworthy
    prefix), or a missing end-marker frame. *)

val write : Codec.fs -> path:string -> t -> int
(** Atomic replace ({!Codec.write_file_atomic}); returns the encoded
    size in bytes. *)

val read : Codec.fs -> path:string -> (t option, string) result
(** [Ok None] when no checkpoint file exists. *)
