type binding = Bound | Free

type t =
  | Scan_class of string
  | Scan_relation of string
  | Select_class of { cls : string; on : string list }
  | Bind_relation of { rel : string; pattern : binding list }
  | Template of { name : string; params : string list; body : string }

let scan_class c = Scan_class c
let scan_relation r = Scan_relation r
let select_class ~cls ~on = Select_class { cls; on }
let bind_relation ~rel ~pattern = Bind_relation { rel; pattern }
let template ~name ~params ~body = Template { name; params; body }

let can_scan_class caps c =
  List.exists
    (function
      | Scan_class c' -> String.equal c c'
      | Select_class { cls; _ } -> String.equal c cls
      | _ -> false)
    caps

let can_scan_relation caps r =
  List.exists
    (function
      | Scan_relation r' -> String.equal r r'
      | Bind_relation { rel; pattern } ->
        String.equal r rel && List.for_all (( = ) Free) pattern
      | _ -> false)
    caps

let pushable_selections caps ~cls =
  List.concat_map
    (function
      | Select_class { cls = c; on } when String.equal c cls -> on
      | _ -> [])
    caps
  |> List.sort_uniq String.compare

let admits_pattern caps ~rel ~bound =
  List.exists
    (function
      | Scan_relation r -> String.equal r rel
      | Bind_relation { rel = r; pattern } ->
        String.equal r rel
        && List.length pattern = List.length bound
        && List.for_all2
             (fun p b -> match p with Bound -> b | Free -> true)
             pattern bound
      | _ -> false)
    caps

let over_advertise ~classes ~relations =
  List.concat_map
    (fun (cls, methods) ->
      Scan_class cls :: (if methods = [] then [] else [ Select_class { cls; on = methods } ]))
    classes
  @ List.concat_map
      (fun (rel, arity) ->
        [
          Scan_relation rel;
          Bind_relation { rel; pattern = List.init arity (fun _ -> Free) };
        ])
      relations

let find_template caps name =
  List.find_opt
    (function
      | Template { name = n; _ } -> String.equal n name
      | _ -> false)
    caps

let pp ppf = function
  | Scan_class c -> Format.fprintf ppf "scan class %s" c
  | Scan_relation r -> Format.fprintf ppf "scan relation %s" r
  | Select_class { cls; on } ->
    Format.fprintf ppf "select on %s(%s)" cls (String.concat ", " on)
  | Bind_relation { rel; pattern } ->
    Format.fprintf ppf "access %s[%s]" rel
      (String.concat ""
         (List.map (function Bound -> "b" | Free -> "f") pattern))
  | Template { name; params; _ } ->
    Format.fprintf ppf "template %s(%s)" name (String.concat ", " params)
