module Term = Logic.Term
module Molecule = Flogic.Molecule

exception Unsupported of string

type served = { mutable requests : int; mutable tuples : int }

type t = {
  name : string;
  schema : Gcm.Schema.t;
  store : Store.t;
  capabilities : Capability.t list;
  anchors : (string * string * string list) list;
  meter : served;
  mutable closed_db : Datalog.Database.t option;
      (* the store closed under the GCM axioms, for template
         evaluation; built on first use (stores are loaded at wrap
         time and append-only afterwards) *)
}

let default_capabilities schema =
  List.map Capability.scan_class (Gcm.Schema.class_names schema)
  @ List.map Capability.scan_relation (Gcm.Schema.relation_names schema)

let make ~name ~schema ?capabilities ?(anchors = []) ?(data = []) () =
  let capabilities =
    match capabilities with
    | Some caps -> caps
    | None -> default_capabilities schema
  in
  let store = Store.create ~signature:(Gcm.Schema.signature schema) () in
  Store.load store data;
  {
    name;
    schema;
    store;
    capabilities;
    anchors;
    meter = { requests = 0; tuples = 0 };
    closed_db = None;
  }

let name t = t.name
let schema t = t.schema
let store t = t.store
let capabilities t = t.capabilities
let anchors t = t.anchors

let of_translation ~name ?capabilities (tr : Cm_plugins.Plugin.translation) =
  make ~name ~schema:tr.Cm_plugins.Plugin.schema ?capabilities
    ~anchors:tr.Cm_plugins.Plugin.anchors ~data:tr.Cm_plugins.Plugin.facts ()

let meter_fetch t n =
  t.meter.requests <- t.meter.requests + 1;
  t.meter.tuples <- t.meter.tuples + n

let fetch_instances t ~cls ~selections =
  if not (Capability.can_scan_class t.capabilities cls) then
    raise
      (Unsupported (Printf.sprintf "source %s does not export class %s" t.name cls));
  let pushable = Capability.pushable_selections t.capabilities ~cls in
  (match
     List.find_opt (fun (m, _, _) -> not (List.mem m pushable)) selections
   with
  | Some (m, _, _) ->
    raise
      (Unsupported
         (Printf.sprintf "source %s cannot filter %s on %s" t.name cls m))
  | None -> ());
  let objs = Store.instances t.store ~cls ~selections in
  meter_fetch t (List.length objs);
  objs

let fetch_tuples t ~rel ~pattern =
  let attrs =
    match Flogic.Signature.attributes (Store.signature t.store) rel with
    | Some attrs -> attrs
    | None ->
      raise
        (Unsupported (Printf.sprintf "source %s has no relation %s" t.name rel))
  in
  let bound = List.map (fun a -> List.mem_assoc a pattern) attrs in
  if not (Capability.admits_pattern t.capabilities ~rel ~bound) then
    raise
      (Unsupported
         (Printf.sprintf "source %s: no capability admits %s[%s]" t.name rel
            (String.concat ""
               (List.map (fun b -> if b then "b" else "f") bound))));
  let tuples = Store.tuples t.store ~rel ~pattern in
  meter_fetch t (List.length tuples);
  tuples

let run_template t ~name:tpl_name ~args =
  match Capability.find_template t.capabilities tpl_name with
  | None ->
    raise
      (Unsupported
         (Printf.sprintf "source %s has no template %s" t.name tpl_name))
  | Some (Capability.Template { params; body; _ }) ->
    (match List.find_opt (fun p -> not (List.mem_assoc p args)) params with
    | Some p ->
      raise
        (Unsupported
           (Printf.sprintf "template %s: missing argument $%s" tpl_name p))
    | None -> ());
    (* splice $param -> term text *)
    let spliced =
      List.fold_left
        (fun body (p, v) ->
          let needle = "$" ^ p in
          let rec replace s =
            match
              (* simple substring replace *)
              let len = String.length needle in
              let n = String.length s in
              let rec find i =
                if i + len > n then None
                else if String.sub s i len = needle then Some i
                else find (i + 1)
              in
              find 0
            with
            | Some i ->
              replace
                (String.sub s 0 i
                ^ Term.to_string v
                ^ String.sub s (i + String.length needle)
                    (String.length s - i - String.length needle))
            | None -> s
          in
          replace body)
        body args
    in
    (match
       Flogic.Fl_parser.parse_query ~signature:(Store.signature t.store) spliced
     with
    | Error e -> raise (Unsupported (Printf.sprintf "template %s: %s" tpl_name e))
    | Ok lits ->
      (* Evaluate against the closed local store (run axioms). *)
      let fl =
        Flogic.Fl_program.make ~signature:(Store.signature t.store) []
      in
      let db =
        match t.closed_db with
        | Some db -> db
        | None ->
          let db = Flogic.Fl_program.run fl ~edb:(Store.database t.store) in
          t.closed_db <- Some db;
          db
      in
      let answers = Flogic.Fl_program.query fl db lits in
      meter_fetch t (List.length answers);
      answers)
  | Some _ -> assert false

let ping t = meter_fetch t 0

let served t = t.meter

let reset_meter t =
  t.meter.requests <- 0;
  t.meter.tuples <- 0

let facts t =
  Datalog.Database.all_facts (Store.database t.store)
  |> List.filter_map (fun (a : Logic.Atom.t) ->
         let d = Flogic.Compile.declared in
         match a.Logic.Atom.pred, a.Logic.Atom.args with
         | p, [ x; c ] when p = d Flogic.Compile.isa_p ->
           Option.map (fun c -> Molecule.Isa (x, Term.sym c)) (Term.as_string c)
         | p, [ x; m; v ] when p = d Flogic.Compile.meth_val_p ->
           Option.map (fun m -> Molecule.Meth_val (x, m, v)) (Term.as_string m)
         | rel, args -> (
           match Flogic.Signature.attributes (Store.signature t.store) rel with
           | Some attrs when List.length attrs = List.length args ->
             Some (Molecule.Rel_val (rel, List.combine attrs args))
           | _ -> None))

let export_xml t =
  Cm_plugins.Gcm_xml.export ~source:t.name
    { Cm_plugins.Plugin.schema = t.schema; facts = facts t; anchors = t.anchors }

let pp ppf t =
  Format.fprintf ppf "source %s: %d classes, %d relations, %d facts@." t.name
    (List.length (Gcm.Schema.class_names t.schema))
    (List.length (Gcm.Schema.relation_names t.schema))
    (Datalog.Database.cardinal (Store.database t.store));
  List.iter
    (fun c -> Format.fprintf ppf "  capability: %a@." Capability.pp c)
    t.capabilities
