module Term = Logic.Term
module Atom = Logic.Atom
module Literal = Logic.Literal
module Molecule = Flogic.Molecule
module Signature = Flogic.Signature
module Database = Datalog.Database

type t = { mutable sg : Signature.t; db : Database.t }

let create ?(signature = Signature.empty) () =
  { sg = signature; db = Database.create () }

let signature t = t.sg

let isa_d = Flogic.Compile.declared Flogic.Compile.isa_p
let meth_val_d = Flogic.Compile.declared Flogic.Compile.meth_val_p

let add_instance t id ~cls =
  ignore (Database.add_fact t.db (Atom.make isa_d [ id; Term.sym cls ]))

let add_value t id ~meth v =
  ignore (Database.add_fact t.db (Atom.make meth_val_d [ id; Term.sym meth; v ]))

let add_tuple t ~rel fields =
  match Signature.attributes t.sg rel with
  | None -> invalid_arg (Printf.sprintf "Store.add_tuple: unknown relation %s" rel)
  | Some attrs ->
    let args =
      List.map
        (fun a ->
          match List.assoc_opt a fields with
          | Some v -> v
          | None ->
            invalid_arg
              (Printf.sprintf "Store.add_tuple: %s is missing attribute %s" rel a))
        attrs
    in
    ignore (Database.add_tuple t.db rel args)

let add_fact t m =
  let atoms = Flogic.Compile.head_atoms t.sg m in
  List.iter (fun a -> ignore (Database.add_fact t.db a)) atoms

let load t ms = List.iter (add_fact t) ms

let remove_fact t m =
  let atoms = Flogic.Compile.head_atoms t.sg m in
  List.fold_left
    (fun n a -> if Database.remove_fact t.db a then n + 1 else n)
    0 atoms

let remove_instance t id ~cls =
  ignore (Database.remove_fact t.db (Atom.make isa_d [ id; Term.sym cls ]))

let remove_value t id ~meth v =
  ignore
    (Database.remove_fact t.db (Atom.make meth_val_d [ id; Term.sym meth; v ]))

type obj = { id : Logic.Term.t; values : (string * Logic.Term.t) list }

type selection = string * Literal.cmp * Logic.Term.t

let values_of t id =
  Datalog.Engine.answers t.db
    (Atom.make meth_val_d [ id; Term.var "M"; Term.var "V" ])
  |> List.filter_map (fun tup ->
         match tup with
         | [ _; m; v ] -> Option.map (fun m -> (m, v)) (Term.as_string m)
         | _ -> None)

let satisfies values (meth, op, rhs) =
  List.exists
    (fun (m, v) ->
      String.equal m meth
      && match Literal.eval_cmp op v rhs with Some true -> true | _ -> false)
    values

let instances t ~cls ~selections =
  Datalog.Engine.answers t.db (Atom.make isa_d [ Term.var "X"; Term.sym cls ])
  |> List.filter_map (fun tup ->
         match tup with
         | [ id; _ ] ->
           let values = values_of t id in
           if List.for_all (satisfies values) selections then
             Some { id; values }
           else None
         | _ -> None)

let tuples t ~rel ~pattern =
  match Signature.attributes t.sg rel with
  | None -> []
  | Some attrs ->
    let pat =
      List.mapi
        (fun i a ->
          match List.assoc_opt a pattern with
          | Some v -> v
          | None -> Term.var (Printf.sprintf "_P%d" i))
        attrs
    in
    (match Database.relation_opt t.db rel with
    | None -> []
    | Some r -> Datalog.Relation.select r ~pattern:pat)

let object_count t ~cls =
  List.length
    (Datalog.Engine.answers t.db (Atom.make isa_d [ Term.var "X"; Term.sym cls ]))

let tuple_count t ~rel = Database.count t.db rel

let classes t =
  Datalog.Engine.answers t.db (Atom.make isa_d [ Term.var "X"; Term.var "C" ])
  |> List.filter_map (fun tup ->
         match tup with [ _; c ] -> Term.as_string c | _ -> None)
  |> List.sort_uniq String.compare

let relations t = Signature.relations t.sg

let database t = t.db

let fact_count t = Datalog.Database.cardinal t.db
