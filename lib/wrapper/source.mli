(** A wrapped source: schema (CM), local store, query capabilities and
    semantic-index anchors — everything a source sends when registering
    with the mediator, plus the "logical API" the mediator calls at
    query time.

    Every fetch is metered: {!served} counts answered requests and
    shipped tuples, which is what the F2/Q5 benches report as
    "tuples moved". *)

exception Unsupported of string
(** Raised when a fetch exceeds the declared query capabilities. *)

type t

val make :
  name:string ->
  schema:Gcm.Schema.t ->
  ?capabilities:Capability.t list ->
  ?anchors:(string * string * string list) list ->
  ?data:Flogic.Molecule.t list ->
  unit ->
  t
(** Default capabilities: scan every class and relation of the schema
    (the paper's minimal browsing capability). *)

val name : t -> string
val schema : t -> Gcm.Schema.t
val store : t -> Store.t
val capabilities : t -> Capability.t list
val anchors : t -> (string * string * string list) list

val of_translation :
  name:string ->
  ?capabilities:Capability.t list ->
  Cm_plugins.Plugin.translation ->
  t
(** Wrap a CM plug-in's output. *)

(** {1 The wrapper's query interface} *)

val fetch_instances :
  t -> cls:string -> selections:Store.selection list -> Store.obj list
(** Raises {!Unsupported} when the class cannot be scanned or a
    selection method is not declared pushable (selections are the
    wrapper's job only if advertised; the mediator must otherwise scan
    and filter locally). *)

val fetch_tuples :
  t -> rel:string -> pattern:(string * Logic.Term.t) list -> Datalog.Tuple.t list
(** Raises {!Unsupported} when no capability admits the access's
    binding pattern. *)

val run_template :
  t -> name:string -> args:(string * Logic.Term.t) list -> Logic.Subst.t list
(** Execute a declared query template against the local store. The
    template body is FL surface syntax with [$param] placeholders. *)

val ping : t -> unit
(** Liveness probe: answers nothing, counts as a served request. The
    breaker's half-open state uses it to sound out a tripped source. *)

val facts : t -> Flogic.Molecule.t list
(** Every declared store fact as a ground molecule, in the source's own
    (unqualified) vocabulary — what {!export_xml} ships and what the
    mediator lifts at materialization time. *)

(** {1 Metering} *)

type served = { mutable requests : int; mutable tuples : int }

val served : t -> served
val reset_meter : t -> unit

(** {1 Wire format} *)

val export_xml : t -> Xmlkit.Xml.t
(** The registration document (schema, data, anchors) in the native
    GCM dialect. *)

val pp : Format.formatter -> t -> unit
