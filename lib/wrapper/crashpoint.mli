(** Crash-point injection over a virtual filesystem.

    The durability stack ({!Datalog.Snapshot}, {!Datalog.Wal}) does all
    its I/O through a {!Codec.fs} record, so a "process crash" can be
    simulated without killing anything: this harness implements the
    record over in-memory files with a tick budget, and raises
    {!Crashed} out of the middle of a write sequence when the budget
    runs out. Because every durability code path is deterministic, one
    fault-free run measures the total tick cost, and then each budget
    in [0 .. total] enumerates a distinct kill point — mid-frame,
    between frames, before or after an fsync, mid-rotation.

    Tick costs: each {e byte} written costs one tick (so a crash can
    land inside a frame image, modelling a torn write); [flush],
    [rename] and [remove] cost one tick each. Reads are free — recovery
    itself is never killed.

    The two {!mode}s bracket what a real kernel may do with un-fsynced
    data: [Keep_torn] keeps everything handed to [write] (the page
    cache survived), [Drop_unsynced] discards all bytes not yet
    [flush]ed (the page cache was lost). Correct recovery must land on
    an allowed state under {e both}. *)

exception Crashed

type mode =
  | Keep_torn  (** un-flushed bytes survive the crash (possibly torn) *)
  | Drop_unsynced  (** only flushed bytes survive *)

type t

val create : unit -> t
(** A fresh empty virtual filesystem, unarmed: all operations succeed
    and cost ticks, nothing crashes. *)

val fs : t -> Codec.fs
(** The {!Codec.fs} view — hand this to {!Datalog.Engine.durability}'s
    [fs] field (bypassing [real_fs]) or use it directly with
    {!Datalog.Snapshot} / {!Datalog.Wal}. *)

val arm : t -> budget:int -> mode:mode -> unit
(** Start charging ticks; the operation that exhausts the budget raises
    {!Crashed} after its partial effect (a write appends the bytes that
    fit, a flush/rename/remove at budget 0 does nothing). Once crashed,
    every further mutating operation re-raises {!Crashed}. *)

val disarm : t -> unit
(** Stop counting; pending state is kept as-is. Used for the fault-free
    measuring run. *)

val ticks : t -> int
(** Ticks consumed since [create] or the last [arm]/[disarm]. *)

val crashed : t -> bool

val settle : t -> unit
(** Apply the post-crash outcome to the file contents according to the
    armed {!mode}: [Keep_torn] promotes pending bytes into the durable
    image, [Drop_unsynced] discards them. Also un-crashes the harness
    so recovery code can read (and later write) through the same
    {!fs}. Calling it on an un-crashed harness just promotes pending
    writes (as if the process exited cleanly without closing). *)

val dump : t -> (string * string) list
(** Durable contents by path, for debugging. *)
