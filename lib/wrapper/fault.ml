type fault =
  | Delay of int
  | Timeout
  | Transient of string
  | Crash
  | Truncate of int
  | Garble
  | Stale_caps

type event = { at : int; fault : fault }

type rates = {
  delay : int;
  timeout : int;
  transient : int;
  crash : int;
  truncate : int;
  garble : int;
  stale : int;
}

let no_faults =
  { delay = 0; timeout = 0; transient = 0; crash = 0; truncate = 0;
    garble = 0; stale = 0 }

type plan =
  | Reliable
  | Script of event list
  | Always of fault
  | Seeded of { seed : int; rates : rates }

type t = {
  src : Source.t;
  plan : plan;
  rng : Random.State.t option;
  mutable calls : int;
  mutable crashed : bool;
  mutable stale : bool;
  mutable clock : int;
  mutable pending_corruption : fault option;
  mutable log : (int * fault) list;  (* reverse call order *)
}

exception Injected of { source : string; call : int; fault : fault }

let wrap ?(plan = Reliable) src =
  let rng =
    match plan with
    | Seeded { seed; _ } -> Some (Random.State.make [| seed |])
    | Reliable | Script _ | Always _ -> None
  in
  {
    src;
    plan;
    rng;
    calls = 0;
    crashed = false;
    stale = false;
    clock = 0;
    pending_corruption = None;
    log = [];
  }

let source t = t.src
let name t = Source.name t.src
let plan t = t.plan
let crashed t = t.crashed
let stale t = t.stale
let clock t = t.clock
let calls t = t.calls
let transcript t = List.rev t.log

let timeout_cost = 100

let fault_to_string = function
  | Delay n -> Printf.sprintf "delay %dms" n
  | Timeout -> "timeout"
  | Transient m -> Printf.sprintf "transient: %s" m
  | Crash -> "crash"
  | Truncate k -> Printf.sprintf "truncate %d/1000" k
  | Garble -> "garble"
  | Stale_caps -> "stale-caps"

let pp_fault ppf f = Format.pp_print_string ppf (fault_to_string f)

(* one scheduled fault per call ordinal *)
let scheduled t =
  match t.plan with
  | Reliable -> None
  | Always f -> Some f
  | Script events ->
    Option.map (fun e -> e.fault)
      (List.find_opt (fun e -> e.at = t.calls) events)
  | Seeded { rates; _ } -> (
    match t.rng with
    | None -> None
    | Some rng -> (
      (* one roll against cumulative per-mille bands in a fixed order *)
      let roll = Random.State.int rng 1000 in
      let bands =
        [
          (rates.delay, `Delay); (rates.timeout, `Timeout);
          (rates.transient, `Transient); (rates.crash, `Crash);
          (rates.truncate, `Truncate); (rates.garble, `Garble);
          (rates.stale, `Stale);
        ]
      in
      let rec band acc = function
        | [] -> None
        | (w, k) :: rest -> if roll < acc + w then Some k else band (acc + w) rest
      in
      match band 0 bands with
      | None -> None
      | Some `Delay -> Some (Delay (1 + Random.State.int rng 200))
      | Some `Timeout -> Some Timeout
      | Some `Transient -> Some (Transient "injected")
      | Some `Crash -> Some Crash
      | Some `Truncate -> Some (Truncate (Random.State.int rng 1000))
      | Some `Garble -> Some Garble
      | Some `Stale -> Some Stale_caps))

let restore ?plan ?(calls = 0) ?(crashed = false) ?(stale = false)
    ?(clock = 0) src =
  let t = wrap ?plan src in
  (* fast-forward: a Seeded plan's future draws depend only on how many
     calls have consumed the stream, so replaying [calls] ordinals of
     [scheduled] puts the PRNG exactly where the crashed process left
     it. Script/Always/Reliable are ordinal-indexed and need no state
     beyond the counter. *)
  for _ = 1 to calls do
    t.calls <- t.calls + 1;
    ignore (scheduled t)
  done;
  t.crashed <- crashed;
  t.stale <- stale;
  t.clock <- clock;
  (* the transcript restarts empty: it witnesses this process's run *)
  t.log <- [];
  t

let inject t fault =
  t.log <- (t.calls, fault) :: t.log;
  raise (Injected { source = name t; call = t.calls; fault })

let call t f =
  t.calls <- t.calls + 1;
  t.clock <- t.clock + 1;
  t.pending_corruption <- None;
  if t.crashed then inject t Crash;
  (match scheduled t with
  | None -> ()
  | Some (Delay n as fl) ->
    t.clock <- t.clock + n;
    t.log <- (t.calls, fl) :: t.log
  | Some Stale_caps ->
    t.stale <- true;
    t.log <- (t.calls, Stale_caps) :: t.log
  | Some ((Truncate _ | Garble) as fl) ->
    t.pending_corruption <- Some fl;
    t.log <- (t.calls, fl) :: t.log
  | Some Timeout ->
    t.clock <- t.clock + timeout_cost;
    inject t Timeout
  | Some (Transient _ as fl) -> inject t fl
  | Some Crash ->
    t.crashed <- true;
    inject t Crash);
  f t.src

let consume_corruption t =
  let c = t.pending_corruption in
  t.pending_corruption <- None;
  c

let capabilities t =
  if not t.stale then Source.capabilities t.src
  else
    let schema = Source.schema t.src in
    Capability.over_advertise
      ~classes:
        (List.map
           (fun (cd : Gcm.Schema.class_def) ->
             (cd.Gcm.Schema.cname, List.map fst cd.Gcm.Schema.methods))
           schema.Gcm.Schema.classes)
      ~relations:
        (List.map
           (fun (r, attrs) -> (r, List.length attrs))
           schema.Gcm.Schema.relations)

let corrupt_payload fault payload =
  let n = String.length payload in
  match fault with
  | Truncate keep -> String.sub payload 0 (min n (max 1 (n * keep / 1000)))
  | Garble ->
    String.mapi
      (fun i c -> if (i * 31 + n) mod 13 = 0 then '&' else c)
      payload
  | _ -> payload
