(** A source's local object base: instances, method values and relation
    tuples, stored on the same engine substrate the mediator uses
    (a {!Datalog.Database} of declared facts). *)

type t

val create : ?signature:Flogic.Signature.t -> unit -> t

val signature : t -> Flogic.Signature.t

val add_instance : t -> Logic.Term.t -> cls:string -> unit
val add_value : t -> Logic.Term.t -> meth:string -> Logic.Term.t -> unit
val add_tuple : t -> rel:string -> (string * Logic.Term.t) list -> unit
(** Raises [Invalid_argument] for relations missing from the signature
    or incomplete attribute bindings. *)

val add_fact : t -> Flogic.Molecule.t -> unit
(** Any ground declaration molecule ([Isa], [Meth_val], [Rel_val],
    [Pred]). *)

val load : t -> Flogic.Molecule.t list -> unit

val remove_fact : t -> Flogic.Molecule.t -> int
(** Delete the declared facts a ground molecule compiles to; returns how
    many were actually present. The inverse of {!add_fact} — feeding the
    same molecules to both leaves the store unchanged. *)

val remove_instance : t -> Logic.Term.t -> cls:string -> unit
val remove_value : t -> Logic.Term.t -> meth:string -> Logic.Term.t -> unit

(** {1 Local evaluation} *)

type obj = { id : Logic.Term.t; values : (string * Logic.Term.t) list }

type selection = string * Logic.Literal.cmp * Logic.Term.t
(** (method, comparison, constant). *)

val instances : t -> cls:string -> selections:selection list -> obj list
(** Objects of a class (declared membership only — the wrapper exports
    raw data, the mediator's axioms close it upward), with all their
    method values, filtered by selections. *)

val tuples : t -> rel:string -> pattern:(string * Logic.Term.t) list -> Datalog.Tuple.t list
(** Tuples of a relation matching the (possibly partial) named-attribute
    pattern; results in signature attribute order. *)

val object_count : t -> cls:string -> int
val tuple_count : t -> rel:string -> int
val classes : t -> string list
val relations : t -> string list

val fact_count : t -> int
(** Declared facts in the store — the size a completeness report quotes
    for a skipped source. *)

val database : t -> Datalog.Database.t
(** The raw declared-fact database (shared, not a copy). *)
