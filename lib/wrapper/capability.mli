(** Query-capability descriptions (Section 2).

    "S also transmits a description of its query capabilities to M ...
    The query capability descriptions minimally specify means for
    browsing through all instances of exported classes and relations,
    and optionally declare further capabilities as binding patterns or
    query templates which allow the mediator to optimize query
    evaluation by pushing down subqueries to the wrapper." *)

type binding = Bound | Free

type t =
  | Scan_class of string
      (** browse all instances of a class (the minimal capability) *)
  | Scan_relation of string
  | Select_class of { cls : string; on : string list }
      (** selections on the listed methods can be pushed down *)
  | Bind_relation of { rel : string; pattern : binding list }
      (** the relation answers accesses matching the binding pattern
          (a [Bound] position must be given by the mediator) *)
  | Template of { name : string; params : string list; body : string }
      (** a named parameterised query in FL surface syntax; occurrences
          of [$param] are replaced by the actual ground terms *)

val scan_class : string -> t
val scan_relation : string -> t
val select_class : cls:string -> on:string list -> t
val bind_relation : rel:string -> pattern:binding list -> t
val template : name:string -> params:string list -> body:string -> t

(** {1 Checks the planner performs} *)

val can_scan_class : t list -> string -> bool
val can_scan_relation : t list -> string -> bool

val pushable_selections : t list -> cls:string -> string list
(** Methods of the class on which selections may be pushed down. *)

val admits_pattern : t list -> rel:string -> bound:bool list -> bool
(** Is there a capability matching an access where position [i] is
    bound iff [List.nth bound i]? A declared pattern admits an access
    when every [Bound] position of the declaration is bound in the
    access. [Scan_relation] admits everything. *)

val over_advertise :
  classes:(string * string list) list ->
  relations:(string * int) list ->
  t list
(** The most permissive capability set a schema could honestly declare:
    scan every class and relation, push selections on every method,
    admit every binding pattern. What a {e stale} capability answer
    looks like to the mediator — the source may well refuse accesses
    this set admits ({!Source.fetch_instances} checks the real
    capabilities), which is exactly the failure mode fault injection
    wants to provoke. *)

val find_template : t list -> string -> t option

val pp : Format.formatter -> t -> unit
