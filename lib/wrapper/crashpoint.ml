exception Crashed

type mode = Keep_torn | Drop_unsynced

type file = { mutable durable : string; mutable pending : string }

type t = {
  files : (string, file) Hashtbl.t;
  mutable armed : bool;
  mutable budget : int;
  mutable mode : mode;
  mutable ticks : int;
  mutable crashed : bool;
}

let create () =
  {
    files = Hashtbl.create 7;
    armed = false;
    budget = max_int;
    mode = Keep_torn;
    ticks = 0;
    crashed = false;
  }

let arm t ~budget ~mode =
  t.armed <- true;
  t.budget <- budget;
  t.mode <- mode;
  t.ticks <- 0;
  t.crashed <- false

let disarm t =
  t.armed <- false;
  t.ticks <- 0;
  t.crashed <- false

let ticks t = t.ticks
let crashed t = t.crashed

(* charge [n] ticks; return how many fit in the budget (the partial
   effect), raising afterwards if the budget ran out *)
let charge t n =
  if t.crashed then raise Crashed;
  if not t.armed then begin
    t.ticks <- t.ticks + n;
    n
  end
  else begin
    let room = t.budget - t.ticks in
    if n <= room then begin
      t.ticks <- t.ticks + n;
      n
    end
    else begin
      t.ticks <- t.budget;
      t.crashed <- true;
      max 0 room
    end
  end

let file_of t path =
  match Hashtbl.find_opt t.files path with
  | Some f -> f
  | None ->
    let f = { durable = ""; pending = "" } in
    Hashtbl.replace t.files path f;
    f

(* the view a restarted process would see *)
let view t f =
  match t.mode with
  | Keep_torn -> f.durable ^ f.pending
  | Drop_unsynced -> f.durable

let settle t =
  Hashtbl.iter
    (fun _ f ->
      f.durable <- view t f;
      f.pending <- "")
    t.files;
  t.crashed <- false;
  t.armed <- false

let dump t =
  Hashtbl.fold (fun path f acc -> (path, f.durable ^ f.pending) :: acc)
    t.files []
  |> List.sort compare

let fs t : Codec.fs =
  let read path =
    match Hashtbl.find_opt t.files path with
    | None -> None
    | Some f ->
      let s = f.durable ^ f.pending in
      if s = "" then None else Some s
  in
  let sink ~append path =
    if t.crashed then raise Crashed;
    let f = file_of t path in
    if not append then begin
      f.durable <- "";
      f.pending <- ""
    end;
    let closed = ref false in
    {
      Codec.write =
        (fun s ->
          if !closed then invalid_arg "Crashpoint: write after close";
          let n = String.length s in
          let wrote = charge t n in
          f.pending <- f.pending ^ String.sub s 0 wrote;
          if wrote < n then raise Crashed);
      flush =
        (fun () ->
          let ok = charge t 1 in
          if ok = 1 then begin
            f.durable <- f.durable ^ f.pending;
            f.pending <- ""
          end;
          if t.crashed then raise Crashed);
      close = (fun () -> closed := true);
    }
  in
  let rename src dst =
    if t.crashed then raise Crashed;
    let ok = charge t 1 in
    if ok = 1 then begin
      (match Hashtbl.find_opt t.files src with
      | None -> ()
      | Some f ->
        (* rename is atomic: the destination flips to the source's
           current full image in one tick *)
        Hashtbl.replace t.files dst
          { durable = f.durable ^ f.pending; pending = "" };
        Hashtbl.remove t.files src)
    end;
    if t.crashed then raise Crashed
  in
  let remove path =
    if t.crashed then raise Crashed;
    let ok = charge t 1 in
    if ok = 1 then Hashtbl.remove t.files path;
    if t.crashed then raise Crashed
  in
  {
    Codec.read;
    sink;
    rename;
    remove;
    exists = (fun path -> Hashtbl.mem t.files path);
    size =
      (fun path ->
        match Hashtbl.find_opt t.files path with
        | None -> 0
        | Some f -> String.length f.durable + String.length f.pending);
  }
