(** Deterministic fault injection around a wrapped source.

    A channel wraps one {!Source.t} and misbehaves according to an
    explicit, replayable plan: every fault is scheduled either by call
    ordinal ({!Script}, {!Always}) or by a PRNG seeded at wrap time
    ({!Seeded}). Time is virtual — a channel keeps its own millisecond
    clock that advances by fixed per-call costs and scheduled delays,
    never by the wall clock — so a run with the same plan replays
    exactly, fault for fault and tick for tick. *)

type fault =
  | Delay of int  (** answer arrives, [n] virtual ms late *)
  | Timeout  (** the call never answers within the timeout budget *)
  | Transient of string  (** one-shot error; a retry may succeed *)
  | Crash  (** permanent: the channel is dead until re-wrapped *)
  | Truncate of int
      (** the answer payload is cut to the given per-mille of its
          length in transit (wire-level corruption) *)
  | Garble  (** bytes of the answer payload are mangled in transit *)
  | Stale_caps
      (** from now on the channel advertises over-approximated
          capabilities that the source does not actually honor *)

type event = { at : int; fault : fault }
(** [at] is the 1-based call ordinal the fault fires on. *)

type rates = {
  delay : int;
  timeout : int;
  transient : int;
  crash : int;
  truncate : int;
  garble : int;
  stale : int;
}
(** Per-mille probabilities, drawn once per call. *)

val no_faults : rates

type plan =
  | Reliable
  | Script of event list  (** faults pinned to call ordinals *)
  | Always of fault  (** the same fault on every call *)
  | Seeded of { seed : int; rates : rates }
      (** one PRNG draw per call against the per-mille rates *)

type t
(** A fault channel: one wrapped source plus its scheduled plan. *)

exception Injected of { source : string; call : int; fault : fault }

val wrap : ?plan:plan -> Source.t -> t
(** Default plan is {!Reliable}: every call goes straight through at a
    cost of one virtual millisecond. *)

val restore :
  ?plan:plan ->
  ?calls:int ->
  ?crashed:bool ->
  ?stale:bool ->
  ?clock:int ->
  Source.t ->
  t
(** Re-wrap a source as a channel resuming mid-history — used by
    durable recovery ({!Mediator.recover}) to rebuild fault channels
    after a process restart. [calls] ordinals are replayed against the
    plan so a {!Seeded} PRNG lands exactly where it was (same plan +
    same total call count ⇒ same future faults as an uninterrupted
    run); the latched [crashed]/[stale] flags and the virtual [clock]
    are set directly. The transcript restarts empty — it only
    witnesses faults fired in this process. *)

val source : t -> Source.t
(** The raw source, bypassing injection (fault-free oracle access). *)

val name : t -> string
val plan : t -> plan

val call : t -> (Source.t -> 'a) -> 'a
(** Route one operation through the channel. Advances the virtual
    clock, consults the plan for this call ordinal, and either

    - answers (no fault, or {!Delay} — which only costs time, or
      {!Stale_caps} — which latches the stale flag, or
      {!Truncate}/{!Garble} — which succeed but leave a pending
      corruption for the wire layer, see {!consume_corruption});
    - raises {!Injected} ({!Timeout}, {!Transient}, {!Crash}; a crash
      latches — every later call re-raises it).

    Exceptions of the operation itself (e.g. {!Source.Unsupported})
    pass through untouched: capability refusals are not faults. *)

val capabilities : t -> Capability.t list
(** The capabilities the channel {e advertises}: the source's real ones
    normally, an over-approximation ({!Capability.over_advertise} of
    the whole schema) once a {!Stale_caps} fault has fired. *)

val consume_corruption : t -> fault option
(** The {!Truncate}/{!Garble} fault scheduled for the most recent call,
    if any — returned once and cleared. The wire layer applies it to
    the encoded payload with {!corrupt_payload}; an in-process caller
    treats it as a failed (retryable) fetch. *)

val corrupt_payload : fault -> string -> string
(** Deterministically damage a payload: [Truncate k] keeps the first
    k‰ of the bytes; [Garble] mangles bytes at positions derived from
    the payload itself. Other faults leave it unchanged. *)

val crashed : t -> bool
val stale : t -> bool

val clock : t -> int
(** Virtual milliseconds consumed by this channel so far. *)

val calls : t -> int

val transcript : t -> (int * fault) list
(** Every fault that fired, with its call ordinal, in call order —
    the replay witness: same plan, same calls ⇒ same transcript. *)

val timeout_cost : int
(** Virtual ms a timed-out call burns before failing. *)

val fault_to_string : fault -> string
val pp_fault : Format.formatter -> fault -> unit
