module Term = Logic.Term
module Molecule = Flogic.Molecule
module Ic_mod = Flogic.Ic

type mode = Ic | Assertion

type output = {
  rules : Molecule.rule list;
  warnings : string list;
}

type ctx = {
  mutable n : int;
  mutable rules : Molecule.rule list;
  mutable warnings : string list;
}

let new_ctx () = { n = 0; rules = []; warnings = [] }

let fresh_int ctx =
  ctx.n <- ctx.n + 1;
  ctx.n

let emit ctx r = ctx.rules <- r :: ctx.rules
let warn ctx msg = ctx.warnings <- msg :: ctx.warnings

let sanitize s =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c else '_') s

let skolem_name c r d = Printf.sprintf "f_%s_%s_%s" (sanitize c) (sanitize r) (sanitize d)

let is_placeholder = function
  | Term.App (f, _) -> String.length f > 2 && String.sub f 0 2 = "f_"
  | _ -> false

let isa_fact c d = Molecule.fact (Molecule.sub (Term.sym c) (Term.sym d))

(* A short printable tag for witness/skolem naming. *)
let rec tag = function
  | Concept.Name n -> sanitize n
  | Concept.Top -> "top"
  | Concept.Bot -> "bot"
  | Concept.And cs -> "and_" ^ String.concat "_" (List.map tag cs)
  | Concept.Or cs -> "or_" ^ String.concat "_" (List.map tag cs)
  | Concept.Exists (r, c) -> Printf.sprintf "ex_%s_%s" (sanitize r) (tag c)
  | Concept.Forall (r, c) -> Printf.sprintf "all_%s_%s" (sanitize r) (tag c)

let truncate_tag s = if String.length s > 40 then String.sub s 0 40 else s

(* The "never" predicate: recognition of Bot. No rule ever derives it. *)
let never_pred = "dl_never"

(* ------------------------------------------------------------------ *)
(* Recognition: body literals testing membership of [x] in a concept.
   Handles EL plus disjunction (via an auxiliary predicate, one rule per
   disjunct); value restrictions cannot be recognised in a positive rule
   body. *)

let rec recognize ctx x = function
  | Concept.Name d -> Some [ Molecule.Pos (Molecule.Isa (x, Term.sym d)) ]
  | Concept.Top -> Some []
  | Concept.Bot -> Some [ Molecule.Pos (Molecule.pred never_pred [ x ]) ]
  | Concept.And cs ->
    List.fold_left
      (fun acc c ->
        match acc, recognize ctx x c with
        | Some lits, Some more -> Some (lits @ more)
        | _ -> None)
      (Some []) cs
  | Concept.Exists (r, c) ->
    let y = Term.var (Printf.sprintf "Y%d" (fresh_int ctx)) in
    (match recognize ctx y c with
    | Some inner -> Some (Molecule.Pos (Molecule.pred r [ x; y ]) :: inner)
    | None -> None)
  | Concept.Or cs ->
    let p = Printf.sprintf "dl_or_%d" (fresh_int ctx) in
    let ok =
      List.for_all
        (fun c ->
          let v = Term.var "X" in
          match recognize ctx v c with
          | Some lits ->
            emit ctx (Molecule.rule (Molecule.pred p [ v ]) lits);
            true
          | None -> false)
        cs
    in
    if ok then Some [ Molecule.Pos (Molecule.pred p [ x ]) ] else None
  | Concept.Forall _ -> None

(* Recognition packaged as a single auxiliary predicate (needed under
   negation). Returns the predicate name. *)
let recognition_pred ctx concept =
  match concept with
  | Concept.Name d ->
    (* direct isa test; no aux needed, signalled by returning None *)
    `Isa d
  | _ -> (
    let p = Printf.sprintf "dl_is_%d" (fresh_int ctx) in
    let v = Term.var "X" in
    match recognize ctx v concept with
    | Some lits ->
      emit ctx (Molecule.rule (Molecule.pred p [ v ]) lits);
      `Pred p
    | None -> `Unsupported)

let neg_membership ctx x concept =
  match recognition_pred ctx concept with
  | `Isa d -> Some (Molecule.Neg (Molecule.Isa (x, Term.sym d)))
  | `Pred p -> Some (Molecule.Neg (Molecule.pred p [ x ]))
  | `Unsupported -> None

(* sat predicate for C ⊑ ∃r.D: sat(X) :- r(X,Y), Y in D, Y real.

   The "Y real" guard excludes placeholder objects: a skolem created by
   the assertion rule itself must not count as the witness that turns
   the assertion off, or the well-founded model oscillates and the
   placeholder facts come out undefined. Structurally, placeholders are
   exactly the [f_...] function terms. *)
let not_placeholder y =
  Molecule.Pos
    (Molecule.pred "builtin:not_functor_prefix" [ y; Term.str "f_" ])

let sat_pred ctx r filler =
  let p = Printf.sprintf "dl_sat_%d" (fresh_int ctx) in
  let x = Term.var "X" and y = Term.var "Y" in
  (match recognize ctx y filler with
  | Some inner ->
    emit ctx
      (Molecule.rule (Molecule.pred p [ x ])
         ((Molecule.Pos (Molecule.pred r [ x; y ]) :: inner)
         @ [ not_placeholder y ]))
  | None ->
    (* Value-restricted filler: accept any r-successor as satisfying
       (conservative: fewer witnesses / fewer skolems). *)
    warn ctx
      (Printf.sprintf
         "filler of EXISTS %s.%s not recognisable; sat check weakened" r
         (Concept.to_string filler));
    emit ctx
      (Molecule.rule (Molecule.pred p [ x ])
         [ Molecule.Pos (Molecule.pred r [ x; y ]); not_placeholder y ]));
  p

(* ------------------------------------------------------------------ *)
(* Enforcement (assertion mode): make rhs true for the x's satisfying
   the body. Each component is a separate rule sharing lhs_body. *)

let rec assert_components ctx ~lhs_tag x rhs =
  match rhs with
  | Concept.Top -> []
  | Concept.Name d -> [ ([ Molecule.Isa (x, Term.sym d) ], []) ]
  | Concept.And cs -> List.concat_map (assert_components ctx ~lhs_tag x) cs
  | Concept.Bot ->
    warn ctx "cannot assert BOT; emit an Ic-mode translation instead";
    []
  | Concept.Or _ ->
    warn ctx
      (Printf.sprintf
         "disjunction %s is not Horn-assertable; skipped (handled at the \
          concept level by the domain map)"
         (Concept.to_string rhs));
    []
  | Concept.Exists (r, filler) ->
    let filler_name, extra_axiom =
      match filler with
      | Concept.Name d -> (d, None)
      | _ ->
        let aux = Printf.sprintf "dl_aux_%d" (fresh_int ctx) in
        (aux, Some (Concept.Subsumes (Concept.Name aux, filler)))
    in
    (* Recursively give the auxiliary concept its structure. *)
    (match extra_axiom with
    | Some (Concept.Subsumes (lhs, rhs')) ->
      let y = Term.var "X" in
      let comps = assert_components ctx ~lhs_tag:(tag lhs) y rhs' in
      List.iter
        (fun (heads, extra) ->
          emit ctx
            (Molecule.rule_multi heads
               (Molecule.Pos (Molecule.Isa (y, Term.sym (tag lhs))) :: extra)))
        comps
    | _ -> ());
    let sat = sat_pred ctx r filler in
    let y = Term.var (Printf.sprintf "Y%d" (fresh_int ctx)) in
    let sk =
      Term.app (skolem_name lhs_tag r (truncate_tag (tag filler))) [ x ]
    in
    [
      ( [ Molecule.Isa (y, Term.sym filler_name); Molecule.pred r [ x; y ] ],
        [
          Molecule.Neg (Molecule.pred sat [ x ]);
          Molecule.Cmp (Logic.Literal.Eq, y, sk);
        ] );
    ]
  | Concept.Forall (r, filler) ->
    let filler_name =
      match filler with
      | Concept.Name d -> d
      | _ ->
        let aux = Printf.sprintf "dl_aux_%d" (fresh_int ctx) in
        let y = Term.var "X" in
        let comps = assert_components ctx ~lhs_tag:aux y filler in
        List.iter
          (fun (heads, extra) ->
            emit ctx
              (Molecule.rule_multi heads
                 (Molecule.Pos (Molecule.Isa (y, Term.sym aux)) :: extra)))
          comps;
        aux
    in
    let y = Term.var (Printf.sprintf "Y%d" (fresh_int ctx)) in
    [
      ( [ Molecule.Isa (y, Term.sym filler_name) ],
        [ Molecule.Pos (Molecule.pred r [ x; y ]) ] );
    ]

(* ------------------------------------------------------------------ *)
(* Integrity-constraint mode: denials with failure witnesses. *)

let rec ic_denials ctx ~lhs_tag ~lhs_body x rhs =
  match rhs with
  | Concept.Top -> ()
  | Concept.Bot ->
    emit ctx
      (Ic_mod.denial ~name:("w_" ^ truncate_tag lhs_tag ^ "_bot") ~args:[ x ]
         lhs_body)
  | Concept.And cs -> List.iter (ic_denials ctx ~lhs_tag ~lhs_body x) cs
  | Concept.Name d ->
    emit ctx
      (Ic_mod.denial
         ~name:(Printf.sprintf "w_%s_isa_%s" (truncate_tag lhs_tag) (sanitize d))
         ~args:[ x ]
         (lhs_body @ [ Molecule.Neg (Molecule.Isa (x, Term.sym d)) ]))
  | Concept.Exists (r, filler) ->
    let sat = sat_pred ctx r filler in
    emit ctx
      (Ic_mod.denial
         ~name:
           (Printf.sprintf "w_%s_%s_%s" (truncate_tag lhs_tag) (sanitize r)
              (truncate_tag (tag filler)))
         ~args:[ x ]
         (lhs_body @ [ Molecule.Neg (Molecule.pred sat [ x ]) ]))
  | Concept.Forall (r, filler) -> (
    let y = Term.var (Printf.sprintf "Y%d" (fresh_int ctx)) in
    match neg_membership ctx y filler with
    | Some neg ->
      emit ctx
        (Ic_mod.denial
           ~name:
             (Printf.sprintf "w_%s_all_%s" (truncate_tag lhs_tag) (sanitize r))
           ~args:[ x; y ]
           (lhs_body @ [ Molecule.Pos (Molecule.pred r [ x; y ]) ] @ [ neg ]))
    | None ->
      warn ctx
        (Printf.sprintf "cannot check ALL %s.%s (unrecognisable filler)" r
           (Concept.to_string filler)))
  | Concept.Or cs ->
    let negs =
      List.map (fun c -> neg_membership ctx x c) cs
    in
    if List.for_all Option.is_some negs then
      emit ctx
        (Ic_mod.denial
           ~name:(Printf.sprintf "w_%s_or" (truncate_tag lhs_tag))
           ~args:[ x ]
           (lhs_body @ List.filter_map Fun.id negs))
    else
      warn ctx
        (Printf.sprintf "cannot check disjunction %s (unrecognisable disjunct)"
           (Concept.to_string rhs))

let subsumption ctx ~mode lhs rhs =
  match lhs, rhs with
  | Concept.Name c, Concept.Name d ->
    (* Plain isa edge: schema-level subclass fact in either mode. *)
    emit ctx (isa_fact c d)
  | _ -> (
    let x = Term.var "X" in
    match recognize ctx x lhs with
    | None ->
      warn ctx
        (Printf.sprintf "left-hand side %s is not recognisable; axiom skipped"
           (Concept.to_string lhs))
    | Some lhs_body -> (
      match mode with
      | Assertion ->
        let comps = assert_components ctx ~lhs_tag:(tag lhs) x rhs in
        List.iter
          (fun (heads, extra) ->
            emit ctx (Molecule.rule_multi heads (lhs_body @ extra)))
          comps
      | Ic -> ic_denials ctx ~lhs_tag:(tag lhs) ~lhs_body x rhs))

let axiom_ctx ctx ~mode = function
  | Concept.Subsumes (lhs, rhs) -> subsumption ctx ~mode lhs rhs
  | Concept.Equiv (lhs, rhs) ->
    subsumption ctx ~mode lhs rhs;
    subsumption ctx ~mode rhs lhs

let axioms ~mode axs =
  let ctx = new_ctx () in
  List.iter (axiom_ctx ctx ~mode) axs;
  { rules = List.rev ctx.rules; warnings = List.rev ctx.warnings }

let axiom ~mode ax = axioms ~mode [ ax ]
