type t =
  | Name of string
  | Top
  | Bot
  | And of t list
  | Or of t list
  | Exists of string * t
  | Forall of string * t

type axiom =
  | Subsumes of t * t
  | Equiv of t * t

let name n = Name n

let conj cs =
  let rec flatten acc = function
    | [] -> List.rev acc
    | And inner :: rest -> flatten acc (inner @ rest)
    | Top :: rest -> flatten acc rest
    | c :: rest -> flatten (c :: acc) rest
  in
  let flat = flatten [] cs in
  if List.exists (fun c -> c = Bot) flat then Bot
  else
    match List.sort_uniq Stdlib.compare flat with
    | [] -> Top
    | [ c ] -> c
    | cs -> And cs

let disj cs =
  let rec flatten acc = function
    | [] -> List.rev acc
    | Or inner :: rest -> flatten acc (inner @ rest)
    | Bot :: rest -> flatten acc rest
    | c :: rest -> flatten (c :: acc) rest
  in
  let flat = flatten [] cs in
  if List.exists (fun c -> c = Top) flat then Top
  else
    match List.sort_uniq Stdlib.compare flat with
    | [] -> Bot
    | [ c ] -> c
    | cs -> Or cs

let exists r c = Exists (r, c)
let forall r c = Forall (r, c)
let subsumes c d = Subsumes (c, d)

let equiv c d = Equiv (c, d)

let compare = Stdlib.compare
let equal c d = compare c d = 0

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else (Hashtbl.add seen x (); true))
    xs

let rec names_acc acc = function
  | Name n -> n :: acc
  | Top | Bot -> acc
  | And cs | Or cs -> List.fold_left names_acc acc cs
  | Exists (_, c) | Forall (_, c) -> names_acc acc c

let names c = dedup (List.rev (names_acc [] c))

let rec roles_acc acc = function
  | Name _ | Top | Bot -> acc
  | And cs | Or cs -> List.fold_left roles_acc acc cs
  | Exists (r, c) | Forall (r, c) -> roles_acc (r :: acc) c

let roles c = dedup (List.rev (roles_acc [] c))

let axiom_names = function
  | Subsumes (c, d) | Equiv (c, d) -> dedup (names c @ names d)

let axiom_roles = function
  | Subsumes (c, d) | Equiv (c, d) -> dedup (roles c @ roles d)

let rec offending_feature = function
  | Name _ | Top | Bot -> None
  | Or _ -> Some "disjunction (OR node)"
  | Forall _ -> Some "value restriction (ALL edge)"
  | And cs -> List.find_map offending_feature cs
  | Exists (_, c) -> offending_feature c

let is_el c = offending_feature c = None

let rec size = function
  | Name _ | Top | Bot -> 1
  | And cs | Or cs -> 1 + List.fold_left (fun s c -> s + size c) 0 cs
  | Exists (_, c) | Forall (_, c) -> 1 + size c

let rec pp ppf = function
  | Name n -> Format.pp_print_string ppf n
  | Top -> Format.pp_print_string ppf "TOP"
  | Bot -> Format.pp_print_string ppf "BOT"
  | And cs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " AND ")
         pp)
      cs
  | Or cs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " OR ")
         pp)
      cs
  | Exists (r, c) -> Format.fprintf ppf "EXISTS %s.%a" r pp c
  | Forall (r, c) -> Format.fprintf ppf "ALL %s.%a" r pp c

let pp_axiom ppf = function
  | Subsumes (c, d) -> Format.fprintf ppf "%a [= %a" pp c pp d
  | Equiv (c, d) -> Format.fprintf ppf "%a == %a" pp c pp d

let to_string c = Format.asprintf "%a" pp c
let axiom_to_string a = Format.asprintf "%a" pp_axiom a
