(* EL completion (Baader, Brandt, Lutz: "Pushing the EL envelope").

   Normal forms over concept names A, B (including top/bot markers):
     NF1  A ⊑ B
     NF2  A1 ⊓ A2 ⊑ B
     NF3  A ⊑ ∃r.B
     NF4  ∃r.A ⊑ B

   Completion sets: S(A) ⊆ names (the subsumers of A), R(r) ⊆ pairs.
   Saturation rules:
     CR1  A' ∈ S(A), (A' ⊑ B)          ⇒ B ∈ S(A)
     CR2  A1,A2 ∈ S(A), (A1 ⊓ A2 ⊑ B)  ⇒ B ∈ S(A)
     CR3  A' ∈ S(A), (A' ⊑ ∃r.B)       ⇒ (A,B) ∈ R(r)
     CR4  (A,B) ∈ R(r), B' ∈ S(B), (∃r.B' ⊑ A'') ⇒ A'' ∈ S(A)
     CR5  (A,B) ∈ R(r), bot ∈ S(B)     ⇒ bot ∈ S(A)
   Then A ⊑ B iff B ∈ S(A) or bot ∈ S(A). *)

module SS = Set.Make (String)
module SM = Map.Make (String)

let top = "⊤"
let bot = "⊥"

type nf =
  | Sub1 of string * string             (* A ⊑ B *)
  | Sub2 of string * string * string    (* A1 ⊓ A2 ⊑ B *)
  | SubEx of string * string * string   (* A ⊑ ∃r.B *)
  | ExSub of string * string * string   (* ∃r.A ⊑ B *)

type t = {
  s : SS.t SM.t;            (* completion sets *)
  input_names : SS.t;
}

(* ------------------------------------------------------------------ *)
(* Normalization *)

type norm_ctx = { mutable k : int; mutable nfs : nf list; mutable names : SS.t }

let fresh_name ctx =
  ctx.k <- ctx.k + 1;
  let n = Printf.sprintf "_N%d" ctx.k in
  (* normalization helpers need completion sets of their own *)
  ctx.names <- SS.add n ctx.names;
  n

let add_nf ctx nf = ctx.nfs <- nf :: ctx.nfs

let note_name ctx n = ctx.names <- SS.add n ctx.names

exception Outside of string

(* Reduce a concept to a name, introducing definitions as needed.
   [polarity] is `Lhs when the concept occurs on the left of ⊑ (we need
   concept ⊑ name) and `Rhs on the right (name ⊑ concept). For EL both
   directions are expressible in the normal forms. *)
let rec name_of ctx polarity c =
  match c with
  | Concept.Name n ->
    note_name ctx n;
    n
  | Concept.Top -> top
  | Concept.Bot -> bot
  | _ ->
    (match Concept.offending_feature c with
    | Some f -> raise (Outside f)
    | None -> ());
    let a = fresh_name ctx in
    (match polarity with
    | `Lhs -> encode_sub ctx c (Concept.Name a)    (* c ⊑ a *)
    | `Rhs -> encode_sub ctx (Concept.Name a) c);  (* a ⊑ c *)
    a

(* Encode lhs ⊑ rhs into normal forms. *)
and encode_sub ctx lhs rhs =
  match lhs, rhs with
  | Concept.Bot, _ -> ()
  | _, Concept.Top -> ()
  | Concept.Name a, Concept.Name b -> add_nf ctx (Sub1 (a, b)); note_name ctx a; note_name ctx b
  | Concept.Name a, Concept.Bot -> add_nf ctx (Sub1 (a, bot)); note_name ctx a
  | Concept.Top, rhs ->
    (* ⊤ ⊑ rhs: everything is rhs; encode via marker name for top. *)
    encode_sub ctx (Concept.Name top) rhs
  | Concept.And cs, rhs ->
    let names = List.map (name_of ctx `Lhs) cs in
    let b = name_of ctx `Rhs rhs in
    let rec chain = function
      | [] -> add_nf ctx (Sub1 (top, b))
      | [ a ] -> add_nf ctx (Sub1 (a, b))
      | [ a1; a2 ] -> add_nf ctx (Sub2 (a1, a2, b))
      | a1 :: a2 :: rest ->
        let m = fresh_name ctx in
        add_nf ctx (Sub2 (a1, a2, m));
        chain (m :: rest)
    in
    chain names
  | Concept.Exists (r, c), rhs ->
    let a = name_of ctx `Lhs c in
    let b = name_of ctx `Rhs rhs in
    add_nf ctx (ExSub (r, a, b))
  | lhs, Concept.And cs -> List.iter (fun c -> encode_sub ctx lhs c) cs
  | lhs, Concept.Exists (r, c) ->
    let a = name_of ctx `Lhs lhs in
    let b = name_of ctx `Rhs c in
    add_nf ctx (SubEx (a, r, b))
  | lhs, Concept.Bot ->
    let a = name_of ctx `Lhs lhs in
    add_nf ctx (Sub1 (a, bot))
  | (Concept.Or _ | Concept.Forall _), _ | _, (Concept.Or _ | Concept.Forall _)
    -> (
    match
      ( Concept.offending_feature lhs,
        Concept.offending_feature rhs )
    with
    | Some f, _ | _, Some f -> raise (Outside f)
    | None, None -> assert false)

let normalize axioms =
  let ctx = { k = 0; nfs = []; names = SS.empty } in
  List.iter
    (fun ax ->
      match ax with
      | Concept.Subsumes (c, d) -> encode_sub ctx c d
      | Concept.Equiv (c, d) ->
        encode_sub ctx c d;
        encode_sub ctx d c)
    axioms;
  ctx

(* ------------------------------------------------------------------ *)
(* Saturation *)

(* Worklist saturation: indexes on the normal forms plus a queue of
   (concept, new-subsumer) events keep each completion-rule application
   constant-time-ish, so classification stays near-linear in the number
   of derived subsumptions (the EL polynomial bound with a small
   constant). *)
let saturate names nfs =
  let all_names = SS.add top (SS.add bot names) in
  let s : (string, SS.t ref) Hashtbl.t = Hashtbl.create 64 in
  SS.iter (fun a -> Hashtbl.replace s a (ref SS.empty)) all_names;
  let get_cell a =
    match Hashtbl.find_opt s a with
    | Some c -> c
    | None ->
      let c = ref SS.empty in
      Hashtbl.add s a c;
      c
  in
  (* nf indexes *)
  let sub1_idx : (string, string list ref) Hashtbl.t = Hashtbl.create 64 in
  let sub2_by_left : (string, (string * string) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let subex_idx : (string, (string * string) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let exsub_idx : (string * string, string list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let push tbl k v =
    match Hashtbl.find_opt tbl k with
    | Some l -> l := v :: !l
    | None -> Hashtbl.add tbl k (ref [ v ])
  in
  List.iter
    (function
      | Sub1 (a, b) -> push sub1_idx a b
      | Sub2 (a1, a2, b) ->
        push sub2_by_left a1 (a2, b);
        push sub2_by_left a2 (a1, b)
      | SubEx (a, role, b) -> push subex_idx a (role, b)
      | ExSub (role, a, b) -> push exsub_idx (role, a) b)
    nfs;
  let idx tbl k = match Hashtbl.find_opt tbl k with Some l -> !l | None -> [] in
  (* role pairs with both directions indexed *)
  let pairs_by_src : (string, (string * string) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let pairs_by_dst : (string, (string * string) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let pair_seen : (string * string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  (* events: `S (a, b) = b entered S(a); `R (role, x, y) = new pair *)
  let add_s a b =
    let cell = get_cell a in
    if not (SS.mem b !cell) then begin
      cell := SS.add b !cell;
      Queue.add (`S (a, b)) queue
    end
  in
  let add_r role x y =
    if not (Hashtbl.mem pair_seen (role, x, y)) then begin
      Hashtbl.add pair_seen (role, x, y) ();
      push pairs_by_src x (role, y);
      push pairs_by_dst y (role, x);
      Queue.add (`R (role, x, y)) queue
    end
  in
  SS.iter
    (fun a ->
      add_s a a;
      add_s a top)
    all_names;
  while not (Queue.is_empty queue) do
    match Queue.pop queue with
    | `S (a, b) ->
      (* CR1: b ⊑ c *)
      List.iter (fun c -> add_s a c) (idx sub1_idx b);
      (* CR2: b ⊓ b2 ⊑ c with b2 already in S(a) *)
      List.iter
        (fun (b2, c) -> if SS.mem b2 !(get_cell a) then add_s a c)
        (idx sub2_by_left b);
      (* CR3: b ⊑ ∃r.c *)
      List.iter (fun (role, c) -> add_r role a c) (idx subex_idx b);
      (* CR4 upstream: pairs (x, a) with ∃r.b ⊑ c *)
      List.iter
        (fun (role, x) ->
          List.iter (fun c -> add_s x c) (idx exsub_idx (role, b)))
        (idx pairs_by_dst a);
      (* CR5: bot propagates to predecessors *)
      if String.equal b bot then
        List.iter (fun (_, x) -> add_s x bot) (idx pairs_by_dst a)
    | `R (role, x, y) ->
      (* CR4: b' ∈ S(y), ∃role.b' ⊑ c *)
      SS.iter
        (fun b' -> List.iter (fun c -> add_s x c) (idx exsub_idx (role, b')))
        !(get_cell y);
      (* CR5 *)
      if SS.mem bot !(get_cell y) then add_s x bot
  done;
  Hashtbl.fold (fun a cell acc -> SM.add a !cell acc) s SM.empty

let classify axioms =
  match normalize axioms with
  | exception Outside f -> Error f
  | ctx ->
    let s = saturate ctx.names ctx.nfs in
    Ok { s; input_names = ctx.names }

(* ------------------------------------------------------------------ *)
(* Queries *)

let completion_set t a =
  match SM.find_opt a t.s with
  | Some s -> s
  | None -> SS.of_list [ a; top ]

let subsumes t c d =
  let sc = completion_set t c in
  SS.mem d sc || SS.mem bot sc || String.equal d top

let unsatisfiable t c = SS.mem bot (completion_set t c)

let subsumers t c =
  completion_set t c |> SS.elements
  |> List.filter (fun n ->
         (not (String.equal n top))
         && (not (String.equal n bot))
         && not (String.length n > 2 && n.[0] = '_' && n.[1] = 'N'))
  |> List.sort String.compare

let concept_names t = SS.elements t.input_names |> List.sort String.compare

type verdict = Subsumed | Not_subsumed | Outside_fragment of string

let check ~tbox c d =
  let qc = "_Qlhs" and qd = "_Qrhs" in
  let extended =
    tbox
    @ [
        Concept.Equiv (Concept.Name qc, c);
        Concept.Equiv (Concept.Name qd, d);
      ]
  in
  match classify extended with
  | Error f -> Outside_fragment f
  | Ok t -> if subsumes t qc qd then Subsumed else Not_subsumed

let satisfiable ~tbox c =
  let qc = "_Qsat" in
  match classify (tbox @ [ Concept.Equiv (Concept.Name qc, c) ]) with
  | Error f -> Error f
  | Ok t -> Ok (not (unsatisfiable t qc))
