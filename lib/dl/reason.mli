(** Terminological reasoning over the decidable domain-map fragment.

    Proposition 1 of the paper: subsumption and satisfiability are
    undecidable for unrestricted GCM domain maps — but "in a typical
    mediator system, reasoning about the DM may be required only to a
    limited extent" and "restricted and decidable fragments like the
    ANATOM domain map are often sufficient". This module implements
    that restricted reasoning: the EL fragment (conjunction, existential
    restriction, Bot), decided in polynomial time by the completion
    algorithm of Baader et al.; anything outside the fragment is
    reported as {!Outside_fragment} rather than guessed at. *)

type t
(** A classified TBox: completion sets computed, ready for O(1)
    subsumption lookups between named concepts. *)

val classify : Concept.axiom list -> (t, string) result
(** Normalize and saturate. [Error feature] when an axiom falls outside
    the EL fragment (disjunction or value restriction). *)

val subsumes : t -> string -> string -> bool
(** [subsumes tbox c d] — is every instance of named concept [c] an
    instance of [d] in all models ([c ⊑ d])? *)

val subsumers : t -> string -> string list
(** All named subsumers of a named concept (sorted), excluding [Top]. *)

val unsatisfiable : t -> string -> bool
(** [true] iff the named concept is forced empty (subsumed by Bot). *)

val concept_names : t -> string list
(** Named concepts known to the TBox (input names only, not
    normalization helpers). *)

type verdict = Subsumed | Not_subsumed | Outside_fragment of string

val check :
  tbox:Concept.axiom list -> Concept.t -> Concept.t -> verdict
(** [check ~tbox c d] decides [c ⊑ d] for possibly-complex EL concepts
    by introducing definition names for [c] and [d] and classifying. *)

val satisfiable : tbox:Concept.axiom list -> Concept.t -> (bool, string) result
(** [Ok true] — the concept can have instances in some model of the
    TBox; [Error feature] — outside the decidable fragment. *)
