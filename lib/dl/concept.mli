(** Description-logic concept expressions and axioms (Definition 1 of
    the paper).

    The domain-map edge forms correspond to:
    - [C -> D]        ~ [Subsumes (Name C, Name D)]            (isa)
    - [C -r-> D]      ~ [Subsumes (Name C, Exists (r, D))]     (ex)
    - [C -ALL:r-> D]  ~ [Subsumes (Name C, Forall (r, D))]     (all)
    - [AND -> Ci]     ~ [And \[...\]]                          (and)
    - [OR -> Ci]      ~ [Or \[...\]]                           (or)
    - [C = D]         ~ [Equiv (Name C, D)]                    (eqv) *)

type t =
  | Name of string
  | Top
  | Bot
  | And of t list
  | Or of t list
  | Exists of string * t  (** [∃r.C] *)
  | Forall of string * t  (** [∀r.C] *)

type axiom =
  | Subsumes of t * t  (** [Subsumes (c, d)] is [c ⊑ d] *)
  | Equiv of t * t

(** {1 Constructors} *)

val name : string -> t
val conj : t list -> t
(** Flattens nested [And]s, drops [Top], collapses to [Bot] when any
    conjunct is [Bot], and returns the single conjunct alone. *)

val disj : t list -> t
val exists : string -> t -> t
val forall : string -> t -> t
val subsumes : t -> t -> axiom
(** [subsumes c d] = [c ⊑ d]. *)

val equiv : t -> t -> axiom

(** {1 Inspection} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val names : t -> string list
(** Concept names occurring, deduplicated. *)

val roles : t -> string list
val axiom_names : axiom -> string list
val axiom_roles : axiom -> string list

val is_el : t -> bool
(** The decidable (polynomial) fragment handled by {!Reason}: no [Or],
    no [Forall]. [Bot] is allowed. *)

val offending_feature : t -> string option
(** The first feature putting the concept outside the EL fragment. *)

val size : t -> int
val pp : Format.formatter -> t -> unit
val pp_axiom : Format.formatter -> axiom -> unit
val to_string : t -> string
val axiom_to_string : axiom -> string
