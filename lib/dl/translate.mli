(** Executing description-logic axioms at the mediator (Section 4).

    Each domain-map edge axiom can be run in one of two modes:

    - {b Integrity constraint}: the object base must witness the axiom;
      otherwise a failure witness is inserted into [ic]. E.g. for
      [C ⊑ ∃r.D]:
      {v w_C_r_D(X) : ic :- X : C, not sat(X).
         sat(X) :- r(X,Y), Y : D. v}
      This is the "data-complete" reading.

    - {b Assertion}: the axiom holds in the real world even if the
      object base lacks the target, so a virtual placeholder (skolem)
      object is created:
      {v Y : D & r(X,Y) :- X : C, not sat(X), Y = f_C_r_D(X). v}

    Disjunctions are not Horn-expressible as assertions and value
    restrictions cannot be recognised in rule bodies; such axioms are
    either translated partially or skipped with a warning — the
    concept-level domain-map operations ({!Domain_map}) handle them
    instead. *)

type mode = Ic | Assertion

type output = {
  rules : Flogic.Molecule.rule list;
  warnings : string list;  (** axioms (or parts) that were skipped *)
}

val axiom : mode:mode -> Concept.axiom -> output
val axioms : mode:mode -> Concept.axiom list -> output

val isa_fact : string -> string -> Flogic.Molecule.rule
(** [isa_fact c d] — the [Sub] fact for a plain isa edge. *)

val skolem_name : string -> string -> string -> string
(** [skolem_name c r d] — the name of the placeholder function
    [f_C_r_D]. *)

val is_placeholder : Logic.Term.t -> bool
(** Recognise skolem placeholder objects created by assertion mode. *)
