(* Tests for the XML transformation combinators (the declarative face
   of CM plug-ins). *)

open Xmlkit

let doc =
  Parse.parse_exn
    {|<uxf>
        <class name="SpinyNeuron"><superclass name="Neuron"/></class>
        <class name="Neuron"/>
        <object name="n1" class="SpinyNeuron"/>
      </uxf>|}

let test_select_seq () =
  let classes = Transform.(apply (select_str "/uxf/class")) doc in
  Alcotest.(check int) "two classes" 2 (List.length classes);
  let supers =
    Transform.(apply (select_str "/uxf/class" >>> select_str "/class/superclass")) doc
  in
  Alcotest.(check int) "one superclass" 1 (List.length supers);
  Alcotest.(check int) "alt unions" 3
    (List.length
       Transform.(
         apply (alt (select_str "/uxf/class") (select_str "/uxf/object")) doc))

let test_rename_wrap () =
  let out =
    Transform.(apply (select_str "/uxf/object" >>> rename "instance")) doc
  in
  (match out with
  | [ Xml.Element ("instance", attrs, _) ] ->
    Alcotest.(check (option string)) "attrs kept" (Some "n1")
      (List.assoc_opt "name" attrs)
  | _ -> Alcotest.fail "rename failed");
  match Transform.(apply (wrap "gcm" (select_str "/uxf/class"))) doc with
  | [ Xml.Element ("gcm", _, children) ] ->
    Alcotest.(check int) "wrapped" 2 (List.length children)
  | _ -> Alcotest.fail "wrap failed"

(* a miniature uxf-2-gcm translator written as a transform *)
let uxf2gcm =
  let open Transform in
  wrap "gcm"
    (alt
       (select_str "/uxf/class"
       >>> element "class"
             ~attrs:[ ("name", Xml.attr "name") ]
             [])
       (select_str "/uxf/object"
       >>> element "instance"
             ~attrs:[ ("id", Xml.attr "name"); ("class", Xml.attr "class") ]
             []))

let test_mini_translator () =
  match Transform.apply_one uxf2gcm doc with
  | Error e -> Alcotest.failf "translator failed: %s" e
  | Ok gcm ->
    Alcotest.(check (option string)) "is gcm" (Some "gcm") (Xml.tag gcm);
    Alcotest.(check int) "two classes" 2 (List.length (Xml.find_children "class" gcm));
    (match Xml.find_child "instance" gcm with
    | Some inst ->
      Alcotest.(check (option string)) "instance id" (Some "n1") (Xml.attr "id" inst)
    | None -> Alcotest.fail "instance missing");
    (* and the produced document is a valid plug-in input *)
    let reg = Cm_plugins.Defaults.registry () in
    (match Cm_plugins.Plugin.translate reg ~format:"gcm-xml" gcm with
    | Ok tr ->
      Alcotest.(check int) "schema classes" 2
        (List.length (Gcm.Schema.class_names tr.Cm_plugins.Plugin.schema))
    | Error e -> Alcotest.failf "downstream plug-in rejected: %s" e)

let test_attrs_children_ops () =
  let x = Xml.elt "a" ~attrs:[ ("k", "1") ] [ Xml.leaf "b" "t1"; Xml.leaf "c" "t2" ] in
  (match Transform.(apply (set_attr "k" "2")) x with
  | [ y ] -> Alcotest.(check (option string)) "set" (Some "2") (Xml.attr "k" y)
  | _ -> Alcotest.fail "set_attr");
  (match Transform.(apply (drop_attr "k")) x with
  | [ y ] -> Alcotest.(check (option string)) "dropped" None (Xml.attr "k" y)
  | _ -> Alcotest.fail "drop_attr");
  match Transform.(apply (map_children (when_tag "b" id))) x with
  | [ y ] -> Alcotest.(check int) "c filtered out" 1 (List.length (Xml.children y))
  | _ -> Alcotest.fail "map_children"

let test_apply_one_arity () =
  match Transform.(apply_one (select_str "/uxf/class")) doc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "two outputs must be an arity error"

let suites =
  [
    ( "xmlkit.transform",
      [
        Alcotest.test_case "select/seq" `Quick test_select_seq;
        Alcotest.test_case "rename/wrap" `Quick test_rename_wrap;
        Alcotest.test_case "mini uxf-2-gcm" `Quick test_mini_translator;
        Alcotest.test_case "attr/children ops" `Quick test_attrs_children_ops;
        Alcotest.test_case "apply_one arity" `Quick test_apply_one_arity;
      ] );
  ]
