(* Tests for the later additions: incremental maintenance
   (Engine.extend), conjunctive-query theory (Cq), the XSD plug-in, and
   relation accesses in the federated planner. *)

open Logic
open Datalog

let v = Term.var
let s = Term.sym
let atom p args = Atom.make p args
let rule h b = Rule.make h b
let fact p args = Rule.fact (atom p args)

(* -------------------------------------------------------------------- *)
(* Engine.extend *)

let tc_rules =
  [
    rule (atom "tc" [ v "X"; v "Y" ]) [ Literal.pos "edge" [ v "X"; v "Y" ] ];
    rule
      (atom "tc" [ v "X"; v "Y" ])
      [ Literal.pos "tc" [ v "X"; v "Z" ]; Literal.pos "edge" [ v "Z"; v "Y" ] ];
  ]

let chain n =
  List.init n (fun k ->
      fact "edge" [ s (Printf.sprintf "n%d" k); s (Printf.sprintf "n%d" (k + 1)) ])

let test_extend_equals_rebuild () =
  let p = Program.make_exn (tc_rules @ chain 8) in
  let db = Engine.materialize p (Database.create ()) in
  (* arrival of a new edge n8 -> n9 *)
  let new_fact = atom "edge" [ s "n8"; s "n9" ] in
  (match Engine.extend p db [ new_fact ] with
  | Ok n -> Alcotest.(check bool) "derived something" true (n > 1)
  | Error e -> Alcotest.failf "extend failed: %s" e);
  let rebuilt =
    Engine.materialize
      (Program.make_exn (tc_rules @ chain 8 @ [ Rule.fact new_fact ]))
      (Database.create ())
  in
  Alcotest.(check int) "same model as rebuild" (Database.cardinal rebuilt)
    (Database.cardinal db);
  Alcotest.(check bool) "closure reaches the new node" true
    (Database.mem db (atom "tc" [ s "n0"; s "n9" ]))

let test_extend_duplicate_is_noop () =
  let p = Program.make_exn (tc_rules @ chain 4) in
  let db = Engine.materialize p (Database.create ()) in
  let before = Database.cardinal db in
  (match Engine.extend p db [ atom "edge" [ s "n0"; s "n1" ] ] with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "expected 0 new facts, got %d" n
  | Error e -> Alcotest.failf "extend failed: %s" e);
  Alcotest.(check int) "unchanged" before (Database.cardinal db)

let test_extend_rejects_negation () =
  let p =
    Program.make_exn
      (tc_rules
      @ [
          rule (atom "iso" [ v "X" ])
            [ Literal.pos "node" [ v "X" ]; Literal.neg "tc" [ v "X"; v "X" ] ];
        ])
  in
  let db = Engine.materialize p (Database.create ()) in
  match Engine.extend p db [ atom "edge" [ s "a"; s "b" ] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negation must be rejected"

(* property: extend(facts) == materialize(program+facts) for random
   positive tc workloads added edge by edge *)
let prop_extend_incremental =
  QCheck.Test.make ~name:"incremental = from-scratch" ~count:40
    QCheck.(list_of_size Gen.(int_bound 15) (pair (int_bound 6) (int_bound 6)))
    (fun pairs ->
      let edges =
        List.map
          (fun (a, b) ->
            atom "edge" [ s (Printf.sprintf "v%d" a); s (Printf.sprintf "v%d" b) ])
          pairs
      in
      let p = Program.make_exn tc_rules in
      let db = Engine.materialize p (Database.create ()) in
      List.iter (fun e -> ignore (Result.get_ok (Engine.extend p db [ e ]))) edges;
      let scratch =
        Engine.materialize
          (Program.make_exn (tc_rules @ List.map Rule.fact edges))
          (Database.create ())
      in
      Database.cardinal scratch = Database.cardinal db)

(* -------------------------------------------------------------------- *)
(* Cq *)

let cq h b = Cq.make_exn h b

let test_cq_containment () =
  (* q1: ans(X) :- e(X,Y), e(Y,Z).   q2: ans(X) :- e(X,Y). *)
  let q1 =
    cq (atom "ans" [ v "X" ]) [ atom "e" [ v "X"; v "Y" ]; atom "e" [ v "Y"; v "Z" ] ]
  in
  let q2 = cq (atom "ans" [ v "X" ]) [ atom "e" [ v "X"; v "Y" ] ] in
  Alcotest.(check bool) "longer path contained in shorter" true
    (Cq.contained_in q1 q2);
  Alcotest.(check bool) "not conversely" false (Cq.contained_in q2 q1);
  Alcotest.(check bool) "not equivalent" false (Cq.equivalent q1 q2)

let test_cq_equivalence_renaming () =
  let q1 = cq (atom "ans" [ v "X" ]) [ atom "e" [ v "X"; v "Y" ] ] in
  let q2 = cq (atom "ans" [ v "A" ]) [ atom "e" [ v "A"; v "B" ] ] in
  Alcotest.(check bool) "alpha-equivalent" true (Cq.equivalent q1 q2)

let test_cq_minimize () =
  (* redundant atom: e(X,Y), e(X,Y') with Y' unused folds onto Y *)
  let q =
    cq (atom "ans" [ v "X" ])
      [ atom "e" [ v "X"; v "Y" ]; atom "e" [ v "X"; v "Y2" ] ]
  in
  let m = Cq.minimize q in
  Alcotest.(check int) "one atom survives" 1 (List.length m.Cq.body);
  Alcotest.(check bool) "still equivalent" true (Cq.equivalent q m);
  Alcotest.(check bool) "q not minimal" false (Cq.is_minimal q);
  Alcotest.(check bool) "m minimal" true (Cq.is_minimal m);
  (* a genuine 2-path does not shrink *)
  let p2 =
    cq (atom "ans" [ v "X"; v "Z" ])
      [ atom "e" [ v "X"; v "Y" ]; atom "e" [ v "Y"; v "Z" ] ]
  in
  Alcotest.(check bool) "2-path minimal" true (Cq.is_minimal p2)

let test_cq_guards () =
  (match Cq.make (atom "ans" [ v "X" ]) [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unsafe head accepted");
  (match Cq.make (atom "ans" [ Term.app "f" [ v "X" ] ]) [ atom "e" [ v "X" ] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "function symbol accepted");
  match
    Cq.of_rule (rule (atom "p" [ v "X" ]) [ Literal.neg "q" [ v "X" ]; Literal.pos "e" [ v "X" ] ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negation accepted by of_rule"

(* property: minimize yields an equivalent query *)
let prop_minimize_equivalent =
  let gen =
    let open QCheck.Gen in
    let var = oneofl [ "X"; "Y"; "Z"; "W" ] in
    list_size (int_range 1 4)
      (map2 (fun a b -> atom "e" [ v a; v b ]) var var)
  in
  QCheck.Test.make ~name:"minimize preserves equivalence" ~count:100
    (QCheck.make gen)
    (fun body ->
      match Cq.make (atom "ans" [ v "X" ]) body with
      | Error _ -> QCheck.assume_fail ()
      | Ok q -> Cq.equivalent q (Cq.minimize q))

(* -------------------------------------------------------------------- *)
(* XSD plug-in *)

let xsd_doc =
  {|<xs:schema name="LAB">
      <xs:complexType name="Neuron">
        <xs:sequence>
          <xs:element name="organism" type="xs:string"/>
          <xs:element name="somaSize" type="xs:decimal"/>
        </xs:sequence>
      </xs:complexType>
      <xs:complexType name="Purkinje">
        <xs:complexContent><xs:extension base="Neuron"/></xs:complexContent>
      </xs:complexType>
      <xs:element name="neuron" type="Purkinje"/>
      <data>
        <neuron id="n1"><organism>rat</organism><somaSize>17.5</somaSize></neuron>
      </data>
    </xs:schema>|}

let test_xsd_plugin () =
  let reg = Cm_plugins.Defaults.registry () in
  Alcotest.(check bool) "registered" true
    (List.mem "xsd" (Cm_plugins.Plugin.formats reg));
  match Cm_plugins.Plugin.translate_string reg ~format:"xsd" xsd_doc with
  | Error e -> Alcotest.failf "xsd translation failed: %s" e
  | Ok tr ->
    let t =
      Flogic.Fl_program.make
        (Gcm.Schema.to_rules tr.Cm_plugins.Plugin.schema
        @ List.map Flogic.Molecule.fact tr.Cm_plugins.Plugin.facts)
    in
    let db = Flogic.Fl_program.run t in
    Alcotest.(check bool) "extension becomes subclass" true
      (Flogic.Fl_program.holds t db
         (Flogic.Molecule.sub (s "purkinje") (s "neuron")));
    Alcotest.(check bool) "instance typed and lifted" true
      (Flogic.Fl_program.holds t db (Flogic.Molecule.isa (s "n1") (s "neuron")));
    Alcotest.(check bool) "decimal value" true
      (Flogic.Fl_program.holds t db
         (Flogic.Molecule.meth_val (s "n1") "soma_size" (Term.float 17.5)))

let test_xsd_errors () =
  let reg = Cm_plugins.Defaults.registry () in
  let bad src =
    match Cm_plugins.Plugin.translate_string reg ~format:"xsd" src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected error for %s" src
  in
  bad "<notaschema/>";
  bad
    {|<xs:schema><data><mystery id="m1"/></data></xs:schema>|}

(* -------------------------------------------------------------------- *)
(* relation access in the planner *)

let rel_source () =
  let schema =
    Gcm.Schema.make ~name:"CONN"
      ~classes:[ Gcm.Schema.class_def "cell" ]
      ~relations:[ ("synapse", [ ("pre", "cell"); ("post", "cell") ]) ]
      ()
  in
  Wrapper.Source.make ~name:"CONN" ~schema
    ~capabilities:
      [
        Wrapper.Capability.scan_class "cell";
        Wrapper.Capability.bind_relation ~rel:"synapse"
          ~pattern:[ Wrapper.Capability.Bound; Wrapper.Capability.Free ];
        Wrapper.Capability.scan_relation "synapse";
      ]
    ~anchors:[ ("cell", "neuron", []) ]
    ~data:
      (List.concat_map
         (fun (a, b) ->
           [
             Flogic.Molecule.Isa (s a, s "cell");
             Flogic.Molecule.Isa (s b, s "cell");
             Flogic.Molecule.Rel_val ("synapse", [ ("pre", s a); ("post", s b) ]);
           ])
         [ ("c1", "c2"); ("c2", "c3"); ("c1", "c3") ])
    ()

let test_planner_relations () =
  let med = Mediation.Mediator.create Neuro.Anatom.full in
  (match Mediation.Mediator.register_source med (rel_source ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "register: %s" e);
  match
    Mediation.Conjunctive.run_text med
      "?- X : 'CONN.cell', 'CONN.synapse'[pre -> X; post -> Y]."
  with
  | Error e -> Alcotest.failf "planner failed: %s" e
  | Ok (answers, report) ->
    Alcotest.(check int) "three synapses" 3 (List.length answers);
    Alcotest.(check bool) "CONN contacted" true
      (List.mem "CONN" report.Mediation.Conjunctive.sources_contacted)

let test_planner_relation_unqualified_rejected () =
  let med = Mediation.Mediator.create Neuro.Anatom.full in
  (match Mediation.Mediator.register_source med (rel_source ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "register: %s" e);
  match
    Mediation.Conjunctive.run med
      [
        Flogic.Molecule.Pos
          (Flogic.Molecule.Rel_val ("synapse", [ ("pre", v "X") ]));
      ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unqualified relation must be refused"

let suites =
  [
    ( "extensions.incremental",
      [
        Alcotest.test_case "extend = rebuild" `Quick test_extend_equals_rebuild;
        Alcotest.test_case "duplicate noop" `Quick test_extend_duplicate_is_noop;
        Alcotest.test_case "negation rejected" `Quick test_extend_rejects_negation;
        QCheck_alcotest.to_alcotest prop_extend_incremental;
      ] );
    ( "extensions.cq",
      [
        Alcotest.test_case "containment" `Quick test_cq_containment;
        Alcotest.test_case "alpha equivalence" `Quick test_cq_equivalence_renaming;
        Alcotest.test_case "minimize" `Quick test_cq_minimize;
        Alcotest.test_case "guards" `Quick test_cq_guards;
        QCheck_alcotest.to_alcotest prop_minimize_equivalent;
      ] );
    ( "extensions.xsd",
      [
        Alcotest.test_case "translate" `Quick test_xsd_plugin;
        Alcotest.test_case "errors" `Quick test_xsd_errors;
      ] );
    ( "extensions.planner_relations",
      [
        Alcotest.test_case "binding patterns" `Quick test_planner_relations;
        Alcotest.test_case "unqualified rejected" `Quick
          test_planner_relation_unqualified_rejected;
      ] );
  ]
