(* The abstract-interpretation layer (Analysis.Absint and the passes
   built on it).

   The load-bearing check is the pruning differential: on the same
   random stratified programs as Test_differential, evaluating with
   [Absint.prune] installed must compute exactly the model of the
   unpruned program, on all three paths (naive, semi-naive, incremental
   maintenance across a delta). A no-false-positive property makes the
   soundness contract explicit: every rule the analysis verdicts [Dead]
   can be removed without changing the model.

   Goldens pin the seeded defects in samples/broken.flp (empty-join,
   dead-rule, no-source, unknown-namespace) and that samples/spines.flp
   stays clean of them; a regression covers alpha-equivalent duplicate
   detection past the subsumption-size cutoff. *)

open Logic
module Engine = Datalog.Engine
module Maintain = Datalog.Maintain
module Database = Datalog.Database
module Program = Datalog.Program
module Absint = Analysis.Absint
module D = Analysis.Diagnostic

let cases = Test_differential.cases
let base_seed = Test_differential.base_seed

let prune_hook rules db = Absint.prune rules db

(* ------------------------------------------------------------------ *)
(* Value lattice *)

let ctx = Absint.make_ctx ()

let consts xs =
  Absint.Consts (Absint.TS.of_list (List.map Term.sym xs))

let value_t = Alcotest.testable Absint.pp_value Absint.value_equal
let check_value msg = Alcotest.check value_t msg

let lattice () =
  let j = Absint.value_join ctx and m = Absint.value_meet ctx in
  check_value "bot is join identity" (consts [ "a" ])
    (j Absint.Vbot (consts [ "a" ]));
  check_value "top absorbs" Absint.Vtop (j Absint.Vtop (consts [ "a" ]));
  check_value "const sets union" (consts [ "a"; "b" ])
    (j (consts [ "a" ]) (consts [ "b" ]));
  check_value "meet of disjoint consts is bot" Absint.Vbot
    (m (consts [ "a" ]) (consts [ "b" ]));
  check_value "meet intersects" (consts [ "b" ])
    (m (consts [ "a"; "b" ]) (consts [ "b"; "c" ]));
  Alcotest.(check bool) "membership in consts" true
    (Absint.value_mem ctx (Term.sym "a") (consts [ "a"; "b" ]));
  Alcotest.(check bool) "non-membership in consts" false
    (Absint.value_mem ctx (Term.sym "z") (consts [ "a"; "b" ]));
  (* without a cones oracle, a chain of singleton joins widens to ⊤
     once it outgrows the cap, so fixpoints terminate *)
  let big =
    List.init (Absint.default_cap + 1) (fun i -> Printf.sprintf "c%d" i)
  in
  check_value "cap widens to top" Absint.Vtop
    (List.fold_left (fun v c -> j v (consts [ c ])) Absint.Vbot big)

(* ------------------------------------------------------------------ *)
(* Direct emptiness verdicts *)

let v = Term.var
let s = Term.sym

let verdict_is_dead = function Absint.Dead _ -> true | Absint.Live -> false

let emptiness_verdicts () =
  let edb =
    Database.of_facts
      [ Atom.make "e" [ s "a"; s "b" ]; Atom.make "e" [ s "b"; s "c" ] ]
  in
  let rules =
    [
      (* live: joins within the EDB's constants *)
      Rule.make (Atom.make "p" [ v "X" ]) [ Literal.pos "e" [ v "X"; v "Y" ] ];
      (* foreign constant: k never occurs in e's columns *)
      Rule.make (Atom.make "q" [ v "X" ])
        [ Literal.pos "e" [ v "X"; s "k" ] ];
      (* reads a provably empty predicate *)
      Rule.make (Atom.make "r" [ v "X" ]) [ Literal.pos "q" [ v "X" ] ];
      (* ground comparison that can never hold *)
      Rule.make (Atom.make "w" [ v "X" ])
        [ Literal.pos "e" [ v "X"; v "Y" ]; Literal.cmp Literal.Eq (s "a") (s "b") ];
    ]
  in
  let a = Absint.emptiness ~edb rules in
  (match a.Absint.verdicts with
  | [ v1; v2; v3; v4 ] ->
    Alcotest.(check bool) "join rule live" false (verdict_is_dead v1);
    Alcotest.(check bool) "foreign constant dead" true (verdict_is_dead v2);
    Alcotest.(check bool) "empty predicate propagates" true (verdict_is_dead v3);
    Alcotest.(check bool) "false ground comparison dead" true
      (verdict_is_dead v4)
  | vs -> Alcotest.failf "expected 4 verdicts, got %d" (List.length vs));
  (* the same program pruned: only the live rule survives *)
  Alcotest.(check int) "prune keeps the live rule" 1
    (List.length (Absint.prune rules edb));
  (* an open predicate must not be reasoned about *)
  let open_a =
    Absint.emptiness ~edb ~assume_nonempty:(String.equal "q") rules
  in
  Alcotest.(check bool) "open predicate stays live downstream" false
    (verdict_is_dead (List.nth open_a.Absint.verdicts 2))

let negation_never_kills () =
  (* a negated literal over an empty predicate is trivially true — it
     must never contribute a Dead verdict *)
  let edb = Database.of_facts [ Atom.make "e" [ s "a" ] ] in
  let rules =
    [
      Rule.make (Atom.make "q" [ v "X" ])
        [ Literal.pos "e" [ v "X" ]; Literal.pos "zero" [ v "X" ] ];
      Rule.make (Atom.make "p" [ v "X" ])
        [ Literal.pos "e" [ v "X" ]; Literal.neg "zero" [ v "X" ] ];
    ]
  in
  let a = Absint.emptiness ~edb rules in
  Alcotest.(check bool) "rule under negation of empty pred is live" false
    (verdict_is_dead (List.nth a.Absint.verdicts 1))

(* ------------------------------------------------------------------ *)
(* Pruning differential *)

let pruned_naive =
  { Test_differential.naive_config with Engine.prune = Some prune_hook }

let pruned_seminaive =
  { Engine.default_config with Engine.prune = Some prune_hook }

let run_case seed =
  let st = Random.State.make [| seed |] in
  let rules, idb = Test_differential.gen_rules st in
  let p = Program.make_exn rules in
  let edb_facts = Test_differential.gen_edb st in
  let edb = Database.of_facts edb_facts in
  let ctx what = Printf.sprintf "seed %d: %s" seed what in
  let full = Engine.materialize p edb in
  (* pruned evaluation is invisible on both bottom-up strategies *)
  Test_differential.check_same
    (ctx "pruned naive == unpruned")
    (Engine.materialize ~config:pruned_naive p edb)
    full;
  let rep = ref Engine.empty_report in
  Test_differential.check_same
    (ctx "pruned seminaive == unpruned")
    (Engine.materialize ~config:pruned_seminaive ~report:rep p edb)
    full;
  Alcotest.(check bool)
    (ctx "rules_pruned counter sane")
    true
    (!rep.Engine.rules_pruned >= 0
    && !rep.Engine.rules_pruned <= List.length rules);
  (* no false positives: a Dead-verdicted rule derives nothing, so
     removing it from the (unpruned) program leaves the model intact *)
  let a = Absint.emptiness ~edb rules in
  List.iteri
    (fun i verdict ->
      if verdict_is_dead verdict then
        let without = List.filteri (fun j _ -> j <> i) rules in
        Test_differential.check_same
          (ctx (Printf.sprintf "dead rule #%d truly derives nothing" i))
          (Engine.materialize (Program.make_exn without) edb)
          full)
    a.Absint.verdicts;
  (* incremental maintenance with pruning enabled stays correct across
     a delta — including deltas that revive an initially-dead rule by
     asserting base facts on rule-defined predicates *)
  let h =
    match Maintain.init ~prune:prune_hook p edb with
    | Ok h -> h
    | Error e -> Alcotest.failf "seed %d: Maintain.init: %s" seed e
  in
  Test_differential.check_same
    (ctx "pruned Maintain.init == unpruned materialize")
    (Maintain.db h) full;
  let d = Test_differential.gen_delta st ~edb_facts ~idb in
  let full' =
    Engine.materialize p (Test_differential.updated_edb edb d)
  in
  (match Maintain.apply h d with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "seed %d: Maintain.apply: %s" seed e);
  Test_differential.check_same
    (ctx "delta after pruned init == re-materialize")
    (Maintain.db h) full'

let differential () =
  for i = 0 to cases - 1 do
    run_case ((base_seed * 10_000) + i)
  done

(* ------------------------------------------------------------------ *)
(* Goldens on the sample corpus *)

let read_sample name =
  let candidates =
    [
      Filename.concat "../samples" name;
      Filename.concat "samples" name;
      Filename.concat "../../samples" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.failf "sample %s not found from %s" name (Sys.getcwd ())
  | Some path ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    src

let lint_sample name =
  let parsed = Flogic.Fl_parser.parse_program_exn (read_sample name) in
  let program =
    Flogic.Fl_program.make ~signature:parsed.Flogic.Fl_parser.signature
      parsed.Flogic.Fl_parser.rules
  in
  Analysis.Kindlint.lint_program
    ~positions:parsed.Flogic.Fl_parser.rule_positions program

let codes diags = List.sort_uniq compare (List.map (fun d -> d.D.code) diags)

let absint_codes = [ "empty-join"; "dead-rule"; "no-source"; "unknown-namespace" ]

let broken_goldens () =
  let diags = lint_sample "broken.flp" in
  let cs = codes diags in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "broken.flp trips %s" c)
        true (List.mem c cs))
    absint_codes;
  (* the seeded defects land on the right rules *)
  let hits code =
    List.filter_map
      (fun d ->
        match (d.D.code = code, d.D.location) with
        | true, D.Rule { text; _ } -> Some text
        | _ -> None)
      diags
  in
  Alcotest.(check bool) "phantom is the empty join" true
    (List.exists
       (fun t -> List.mem "phantom" (String.split_on_char '(' t))
       (hits "empty-join"));
  Alcotest.(check bool) "haunted is the dead rule" true
    (List.exists
       (fun t -> List.mem "haunted" (String.split_on_char '(' t))
       (hits "dead-rule"));
  (* positions flowed from the parser into the diagnostics *)
  Alcotest.(check bool) "some diagnostic carries a source position" true
    (List.exists
       (fun d ->
         match d.D.location with
         | D.Rule { pos = Some _; _ } -> true
         | _ -> false)
       diags)

let spines_clean () =
  let cs = codes (lint_sample "spines.flp") in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "spines.flp free of %s" c)
        false (List.mem c cs))
    absint_codes

(* ------------------------------------------------------------------ *)
(* Alpha-equivalent duplicates (regression for the satellite): with
   seven body literals the pairwise-subsumption check is over its size
   cutoff, so only the canonical-form comparison can catch the renamed
   copy. *)

let alpha_duplicate () =
  let body vars =
    List.mapi
      (fun i x -> Literal.pos (Printf.sprintf "e%d" i) [ v x; v "Z" ])
      vars
  in
  let r1 =
    Rule.make (Atom.make "p" [ v "A" ])
      (body [ "A"; "B"; "C"; "D"; "E"; "F"; "G" ])
  in
  let r2 =
    Rule.make (Atom.make "p" [ v "U" ])
      (body [ "U"; "V"; "W"; "X"; "Y"; "T"; "S" ])
  in
  let diags = Analysis.Rule_lint.lint ~check_unused:false [ r1; r2 ] in
  let dup =
    List.find_opt (fun d -> d.D.code = "duplicate-rule") diags
  in
  match dup with
  | None -> Alcotest.fail "renamed 7-literal duplicate not flagged"
  | Some d ->
    Alcotest.(check bool) "message mentions the renaming" true
      (let needle = "variable renaming" in
       let n = String.length needle and m = String.length d.D.message in
       let rec scan i =
         i + n <= m && (String.sub d.D.message i n = needle || scan (i + 1))
       in
       scan 0)

let alpha_not_confused () =
  (* same shape, different join structure: not a duplicate *)
  let r1 =
    Rule.make (Atom.make "p" [ v "A" ])
      [ Literal.pos "e" [ v "A"; v "B" ]; Literal.pos "e" [ v "B"; v "C" ] ]
  in
  let r2 =
    Rule.make (Atom.make "p" [ v "A" ])
      [ Literal.pos "e" [ v "A"; v "B" ]; Literal.pos "e" [ v "A"; v "C" ] ]
  in
  let diags = Analysis.Rule_lint.lint ~check_unused:false [ r1; r2 ] in
  Alcotest.(check bool) "different join structure kept" false
    (List.exists (fun d -> d.D.code = "duplicate-rule") diags)

let suites =
  [
    ( "absint",
      [
        Alcotest.test_case "value lattice joins, meets and widening" `Quick
          lattice;
        Alcotest.test_case "emptiness verdicts on a crafted program" `Quick
          emptiness_verdicts;
        Alcotest.test_case "negation never contributes a Dead verdict" `Quick
          negation_never_kills;
        Alcotest.test_case
          (Printf.sprintf
             "pruning is invisible on %d random programs (all engines)" cases)
          `Quick differential;
        Alcotest.test_case "broken.flp goldens (seeded defects all fire)"
          `Quick broken_goldens;
        Alcotest.test_case "spines.flp stays clean of absint codes" `Quick
          spines_clean;
        Alcotest.test_case "alpha-equivalent 7-literal duplicate flagged"
          `Quick alpha_duplicate;
        Alcotest.test_case "non-equivalent join shapes not merged" `Quick
          alpha_not_confused;
      ] );
  ]
