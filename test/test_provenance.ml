(* Tests for derivation explanations (why-provenance), DRed retraction,
   and the LAV inverse-rules demonstration. *)

open Logic
open Datalog

let v = Term.var
let s = Term.sym
let atom p args = Atom.make p args
let rule h b = Rule.make h b
let fact p args = Rule.fact (atom p args)

let tc_rules =
  [
    rule (atom "tc" [ v "X"; v "Y" ]) [ Literal.pos "edge" [ v "X"; v "Y" ] ];
    rule
      (atom "tc" [ v "X"; v "Y" ])
      [ Literal.pos "tc" [ v "X"; v "Z" ]; Literal.pos "edge" [ v "Z"; v "Y" ] ];
  ]

let chain n =
  List.init n (fun k ->
      fact "edge" [ s (Printf.sprintf "n%d" k); s (Printf.sprintf "n%d" (k + 1)) ])

(* -------------------------------------------------------------------- *)
(* Explain *)

let setup n =
  let p = Program.make_exn (tc_rules @ chain n) in
  let facts, rules_only = Program.split_facts p in
  let edb = Database.of_facts facts in
  let db = Engine.materialize p (Database.create ()) in
  (Program.make_exn (Program.rules rules_only), db, edb)

let test_explain_extensional () =
  let p, db, edb = setup 3 in
  match Explain.explain p db ~edb (atom "edge" [ s "n0"; s "n1" ]) with
  | Some { how = Explain.Extensional; _ } -> ()
  | _ -> Alcotest.fail "edge fact must be extensional"

let test_explain_derived () =
  let p, db, edb = setup 5 in
  match Explain.explain p db ~edb (atom "tc" [ s "n0"; s "n5" ]) with
  | None -> Alcotest.fail "tc(n0,n5) must be explainable"
  | Some proof ->
    (* the proof bottoms out in exactly the 5 chain edges *)
    let leaves =
      Explain.leaves proof |> List.map Atom.to_string |> List.sort_uniq compare
    in
    Alcotest.(check int) "five edges" 5 (List.length leaves);
    Alcotest.(check bool) "depth reflects recursion" true
      (Explain.depth proof >= 5);
    Alcotest.(check bool) "size sane" true (Explain.size proof >= 9)

let test_explain_absent () =
  let p, db, edb = setup 3 in
  Alcotest.(check bool) "non-fact unexplained" true
    (Explain.explain p db ~edb (atom "tc" [ s "n3"; s "n0" ]) = None)

let test_explain_negation () =
  let rules =
    [
      rule (atom "node" [ v "X" ]) [ Literal.pos "edge" [ v "X"; v "Y" ] ];
      rule (atom "node" [ v "Y" ]) [ Literal.pos "edge" [ v "X"; v "Y" ] ];
      rule
        (atom "sink" [ v "X" ])
        [ Literal.pos "node" [ v "X" ]; Literal.neg "has_out" [ v "X" ] ];
      rule (atom "has_out" [ v "X" ]) [ Literal.pos "edge" [ v "X"; v "Y" ] ];
    ]
  in
  let p_all = Program.make_exn (rules @ chain 2) in
  let facts, _ = Program.split_facts p_all in
  let edb = Database.of_facts facts in
  let db = Engine.materialize p_all (Database.create ()) in
  match Explain.explain (Program.make_exn rules) db ~edb (atom "sink" [ s "n2" ]) with
  | Some proof ->
    let rec has_absent t =
      match t.Explain.how with
      | Explain.Absent _ -> true
      | Explain.Rule { premises; _ } -> List.exists has_absent premises
      | _ -> false
    in
    Alcotest.(check bool) "absence recorded" true (has_absent proof)
  | None -> Alcotest.fail "sink(n2) must be explainable"

(* property: every derived tc fact has an explanation whose leaves are
   edges of the graph *)
let prop_explain_complete =
  QCheck.Test.make ~name:"every derived fact explainable" ~count:30
    QCheck.(list_of_size Gen.(int_bound 15) (pair (int_bound 6) (int_bound 6)))
    (fun pairs ->
      let edges =
        List.map
          (fun (a, b) ->
            fact "edge" [ s (Printf.sprintf "v%d" a); s (Printf.sprintf "v%d" b) ])
          pairs
      in
      let p_all = Program.make_exn (tc_rules @ edges) in
      let facts, rules_only = Program.split_facts p_all in
      let edb = Database.of_facts facts in
      let db = Engine.materialize p_all (Database.create ()) in
      let p = Program.make_exn (Program.rules rules_only) in
      Database.facts db "tc"
      |> List.for_all (fun f ->
             match Explain.explain p db ~edb f with
             | Some proof ->
               List.for_all
                 (fun leaf -> Database.mem edb leaf)
                 (Explain.leaves proof)
             | None -> false))

(* -------------------------------------------------------------------- *)
(* Retract (DRed) *)

let test_retract_equals_rebuild () =
  let p = Program.make_exn (tc_rules @ chain 6) in
  let db = Engine.materialize p (Database.create ()) in
  (* cut the chain in the middle *)
  let cut = atom "edge" [ s "n3"; s "n4" ] in
  (match Engine.retract p db [ cut ] with
  | Ok gone -> Alcotest.(check bool) "facts disappeared" true (gone > 1)
  | Error e -> Alcotest.failf "retract failed: %s" e);
  let rebuilt =
    Engine.materialize
      (Program.make_exn
         (tc_rules @ List.filter (fun r -> r.Rule.head <> cut) (chain 6)))
      (Database.create ())
  in
  Alcotest.(check int) "same model as rebuild" (Database.cardinal rebuilt)
    (Database.cardinal db);
  Alcotest.(check bool) "long closure gone" false
    (Database.mem db (atom "tc" [ s "n0"; s "n6" ]));
  Alcotest.(check bool) "prefix closure survives" true
    (Database.mem db (atom "tc" [ s "n0"; s "n3" ]))

let test_retract_rederives () =
  (* diamond: two paths a->d; removing one edge must keep tc(a,d) *)
  let edges =
    [ fact "edge" [ s "a"; s "b" ]; fact "edge" [ s "b"; s "d" ];
      fact "edge" [ s "a"; s "c" ]; fact "edge" [ s "c"; s "d" ] ]
  in
  let p = Program.make_exn (tc_rules @ edges) in
  let db = Engine.materialize p (Database.create ()) in
  (match Engine.retract p db [ atom "edge" [ s "b"; s "d" ] ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "retract failed: %s" e);
  Alcotest.(check bool) "tc(a,d) rederived via c" true
    (Database.mem db (atom "tc" [ s "a"; s "d" ]));
  Alcotest.(check bool) "tc(b,d) gone" false
    (Database.mem db (atom "tc" [ s "b"; s "d" ]))

let test_retract_rejects_negation () =
  let p =
    Program.make_exn
      (tc_rules
      @ [
          rule (atom "iso" [ v "X" ])
            [ Literal.pos "node" [ v "X" ]; Literal.neg "tc" [ v "X"; v "X" ] ];
        ])
  in
  let db = Engine.materialize p (Database.create ()) in
  match Engine.retract p db [ atom "edge" [ s "a"; s "b" ] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negation must be rejected"

let prop_retract_incremental =
  QCheck.Test.make ~name:"retract = rebuild without the fact" ~count:40
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 15) (pair (int_bound 5) (int_bound 5)))
        (int_bound 20))
    (fun (pairs, pick) ->
      let edges =
        List.sort_uniq compare
          (List.map
             (fun (a, b) ->
               (Printf.sprintf "v%d" a, Printf.sprintf "v%d" b))
             pairs)
      in
      let victim = List.nth edges (pick mod List.length edges) in
      let p =
        Program.make_exn
          (tc_rules @ List.map (fun (a, b) -> fact "edge" [ s a; s b ]) edges)
      in
      let db = Engine.materialize p (Database.create ()) in
      (match Engine.retract p db [ atom "edge" [ s (fst victim); s (snd victim) ] ] with
      | Ok _ -> ()
      | Error e -> failwith e);
      let rebuilt =
        Engine.materialize
          (Program.make_exn
             (tc_rules
             @ List.filter_map
                 (fun (a, b) ->
                   if (a, b) = victim then None else Some (fact "edge" [ s a; s b ]))
                 edges))
          (Database.create ())
      in
      Database.cardinal rebuilt = Database.cardinal db)

(* -------------------------------------------------------------------- *)
(* LAV inverse rules *)

let test_lav_invert_and_answer () =
  (* LAV source: v(X,Z) := e(X,Y), e(Y,Z) — stores 2-paths of a global
     edge relation. *)
  let view =
    Mediation.Lav.view ~name:"v"
      (Cq.make_exn (atom "q" [ v "X"; v "Z" ])
         [ atom "e" [ v "X"; v "Y" ]; atom "e" [ v "Y"; v "Z" ] ])
  in
  let inv = Mediation.Lav.invert view in
  Alcotest.(check int) "one inverse rule per body atom" 2 (List.length inv);
  (* extension: v(a,c), v(c,e) *)
  let ext =
    Database.of_facts [ atom "v" [ s "a"; s "c" ]; atom "v" [ s "c"; s "e" ] ]
  in
  (* certain answers about the global e relation: none are skolem-free
     (the midpoints are unknown)... *)
  Alcotest.(check int) "no certain e facts" 0
    (List.length (Mediation.Lav.answer ~views:[ view ] ~extensions:ext (atom "e" [ v "X"; v "Y" ])));
  (* ...but 2-path-composed queries do have certain answers: add the
     query as a rule over the reconstructed e. *)
  let rules =
    Mediation.Lav.invert view
    @ [
        rule (atom "q2" [ v "X"; v "Z" ])
          [ Literal.pos "e" [ v "X"; v "Y" ]; Literal.pos "e" [ v "Y"; v "Z" ] ];
      ]
  in
  let db = Engine.materialize (Program.make_exn rules) ext in
  Alcotest.(check bool) "q2(a,c) certain" true
    (Database.mem db (atom "q2" [ s "a"; s "c" ]))

let test_lav_obstacles () =
  let fl = Flogic.Fl_parser.parse_program_exn in
  let first src = List.hd (fl src).Flogic.Fl_parser.rules in
  Alcotest.(check (option string)) "plain CQ view ok" None
    (Mediation.Lav.inversion_obstacle (first "view(X, P) :- prot(X, P)."));
  (match
     Mediation.Lav.inversion_obstacle
       (first "pd(X, P) :- has_a_star(X, Y), prot(Y, P).")
   with
  | Some reason ->
    Alcotest.(check bool) "names the recursion" true
      (String.length reason > 0)
  | None -> Alcotest.fail "recursive DM view must be flagged");
  (match
     Mediation.Lav.inversion_obstacle
       (first "total(W, N) :- N = count{P [W]; has(W, P)}.")
   with
  | Some _ -> ()
  | None -> Alcotest.fail "aggregate view must be flagged");
  match
    Mediation.Lav.inversion_obstacle
      (first "clean(X) :- obj(X), not dirty(X).")
  with
  | Some _ -> ()
  | None -> Alcotest.fail "negation must be flagged"

let suites =
  [
    ( "provenance.explain",
      [
        Alcotest.test_case "extensional" `Quick test_explain_extensional;
        Alcotest.test_case "derived" `Quick test_explain_derived;
        Alcotest.test_case "absent" `Quick test_explain_absent;
        Alcotest.test_case "negation" `Quick test_explain_negation;
        QCheck_alcotest.to_alcotest prop_explain_complete;
      ] );
    ( "provenance.retract",
      [
        Alcotest.test_case "retract = rebuild" `Quick test_retract_equals_rebuild;
        Alcotest.test_case "rederivation" `Quick test_retract_rederives;
        Alcotest.test_case "negation rejected" `Quick test_retract_rejects_negation;
        QCheck_alcotest.to_alcotest prop_retract_incremental;
      ] );
    ( "provenance.lav",
      [
        Alcotest.test_case "invert and answer" `Quick test_lav_invert_and_answer;
        Alcotest.test_case "obstacles (paper's Discussion)" `Quick test_lav_obstacles;
      ] );
  ]
