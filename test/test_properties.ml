(* Cross-cutting property tests: closure algebra, lub laws, semantic
   index monotonicity, EL monotonicity, aggregate semantics against a
   reference implementation. *)

open Domain_map

let gen_dmap =
  (* isa edges only point from higher to lower indices, so the isa
     hierarchy is a DAG — the shape Example 2's antisymmetry constraint
     enforces on real domain maps. Role edges are unconstrained. *)
  let open QCheck.Gen in
  let idx = int_bound 9 in
  let name = Printf.sprintf "c%d" in
  let edge =
    oneof
      [
        map2 (fun a b -> `Isa (a, b)) idx idx;
        map2 (fun a b -> `Has (name a, name b)) idx idx;
      ]
  in
  map
    (fun edges ->
      List.fold_left
        (fun dm e ->
          match e with
          | `Isa (a, b) when a > b -> Dmap.isa dm (name a) (name b)
          | `Isa _ -> dm
          | `Has (a, b) -> Dmap.ex dm ~role:"has" a b)
        Dmap.empty edges)
    (list_size (int_range 1 20) edge)

let arb_dmap = QCheck.make ~print:(Format.asprintf "%a" Dmap.pp) gen_dmap

let prop_tc_transitive_superset =
  QCheck.Test.make ~name:"tc is transitive and contains the base" ~count:80
    arb_dmap
    (fun dm ->
      let base = (Dmap.isa_links dm).Dmap.definite in
      let tc = Closure.tc base in
      List.for_all (fun (a, b) -> a = b || List.mem (a, b) tc) base
      && List.for_all
           (fun (a, b) ->
             List.for_all
               (fun (b', c) -> b <> b' || a = c || List.mem (a, c) tc)
               tc)
           tc)

let prop_dc_contains_base_and_down =
  QCheck.Test.make ~name:"dc ⊇ base ∪ dc_down" ~count:80 arb_dmap
    (fun dm ->
      let isa = Closure.isa_tc dm in
      let base = (Dmap.role_links dm "has").Dmap.definite in
      let dc = Closure.dc ~isa_tc:isa base in
      let dc_down = Closure.dc_down ~isa_tc:isa base in
      List.for_all (fun p -> List.mem p dc) base
      && List.for_all (fun p -> List.mem p dc) dc_down)

let prop_traversal_region_contains_descendants =
  QCheck.Test.make ~name:"traversal region contains isa descendants" ~count:60
    arb_dmap
    (fun dm ->
      List.for_all
        (fun c ->
          let region = Closure.reachable (Closure.traversal dm) c in
          List.for_all (fun d -> List.mem d region) (Closure.descendants dm c))
        (Dmap.concepts dm))

let prop_ancestors_descendants_dual =
  QCheck.Test.make ~name:"a ∈ ancestors(b) iff b ∈ descendants(a)" ~count:60
    arb_dmap
    (fun dm ->
      let cs = Dmap.concepts dm in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              List.mem a (Closure.ancestors dm b)
              = List.mem b (Closure.descendants dm a))
            cs)
        cs)

let prop_lub_laws =
  QCheck.Test.make ~name:"lub: symmetric, common, minimal, idempotent" ~count:60
    arb_dmap
    (fun dm ->
      let cs = Dmap.concepts dm in
      List.for_all
        (fun a ->
          (* lub of a singleton is a itself *)
          Lub.lub dm [ a ] = [ a ]
          && List.for_all
               (fun b ->
                 let l1 = Lub.lub dm [ a; b ] in
                 let l2 = Lub.lub dm [ b; a ] in
                 List.sort compare l1 = List.sort compare l2
                 && List.for_all
                      (fun u ->
                        List.mem u (Closure.ancestors dm a)
                        && List.mem u (Closure.ancestors dm b))
                      l1)
               cs)
        cs)

let prop_index_monotone =
  QCheck.Test.make ~name:"adding anchors only grows source selections" ~count:60
    QCheck.(pair arb_dmap (small_list (pair (int_bound 9) (int_bound 9))))
    (fun (dm, anchor_specs) ->
      let concepts = Dmap.concepts dm in
      if concepts = [] then true
      else begin
        let concept_of i = List.nth concepts (i mod List.length concepts) in
        let idx =
          List.fold_left
            (fun idx (si, ci) ->
              Index.add idx
                ~source:(Printf.sprintf "S%d" (si mod 3))
                ~cm_class:"c" ~concept:(concept_of ci) ())
            Index.empty anchor_specs
        in
        let idx' =
          Index.add idx ~source:"EXTRA" ~cm_class:"c"
            ~concept:(concept_of 0) ()
        in
        List.for_all
          (fun c ->
            let before = Index.sources_at dm idx ~concept:c in
            let after = Index.sources_at dm idx' ~concept:c in
            List.for_all (fun s -> List.mem s after) before)
          concepts
      end)

let prop_el_monotone =
  (* EL is monotone: adding axioms never removes subsumptions. *)
  let gen_axioms =
    let open QCheck.Gen in
    let name = map (Printf.sprintf "k%d") (int_bound 7) in
    list_size (int_range 1 8)
      (oneof
         [
           map2
             (fun a b -> Dl.Concept.subsumes (Dl.Concept.name a) (Dl.Concept.name b))
             name name;
           map3
             (fun a r b ->
               Dl.Concept.subsumes (Dl.Concept.name a)
                 (Dl.Concept.exists r (Dl.Concept.name b)))
             name (oneofl [ "r"; "s" ]) name;
         ])
  in
  QCheck.Test.make ~name:"EL classification is monotone" ~count:60
    (QCheck.pair (QCheck.make gen_axioms) (QCheck.make gen_axioms))
    (fun (t1, extra) ->
      match Dl.Reason.classify t1, Dl.Reason.classify (t1 @ extra) with
      | Ok r1, Ok r2 ->
        List.for_all
          (fun a ->
            List.for_all
              (fun b -> Dl.Reason.subsumes r2 a b)
              (Dl.Reason.subsumers r1 a))
          (Dl.Reason.concept_names r1)
      | _ -> false)

(* Aggregates: engine count/sum agree with a reference fold. *)
let prop_aggregate_reference =
  let open Logic in
  QCheck.Test.make ~name:"engine aggregates match reference" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 20) (pair (int_bound 4) (int_bound 9)))
    (fun rows ->
      let facts =
        List.sort_uniq compare rows
        |> List.map (fun (g, v) ->
               Rule.fact
                 (Atom.make "m"
                    [ Term.sym (Printf.sprintf "g%d" g); Term.int v ]))
      in
      let rules =
        [
          Rule.make
            (Atom.make "cnt" [ Term.var "G"; Term.var "N" ])
            [
              Literal.count ~target:(Term.var "V") ~group_by:[ Term.var "G" ]
                ~result:(Term.var "N")
                [ Atom.make "m" [ Term.var "G"; Term.var "V" ] ];
            ];
          Rule.make
            (Atom.make "total" [ Term.var "G"; Term.var "N" ])
            [
              Literal.agg Literal.Sum ~target:(Term.var "V")
                ~group_by:[ Term.var "G" ] ~result:(Term.var "N")
                [ Atom.make "m" [ Term.var "G"; Term.var "V" ] ];
            ];
        ]
      in
      let db =
        Datalog.Engine.materialize
          (Datalog.Program.make_exn (facts @ rules))
          (Datalog.Database.create ())
      in
      let dedup = List.sort_uniq compare rows in
      let groups = List.sort_uniq compare (List.map fst dedup) in
      List.for_all
        (fun g ->
          let vs = List.filter_map (fun (g', v) -> if g = g' then Some v else None) dedup in
          let gname = Term.sym (Printf.sprintf "g%d" g) in
          Datalog.Database.mem db
            (Atom.make "cnt" [ gname; Term.int (List.length vs) ])
          && Datalog.Database.mem db
               (Atom.make "total"
                  [ gname; Term.float (float_of_int (List.fold_left ( + ) 0 vs)) ]))
        groups)

(* Relation against a reference set: random interleavings of
   add/remove/lookup/select must agree with a list model at every step.
   Lookups force the lazy per-position indexes into existence, so the
   removes and adds that follow them exercise the in-place index
   maintenance (a remove used to invalidate; now it edits buckets). *)
let prop_relation_model =
  let open QCheck in
  let gen_op =
    Gen.(
      oneof
        [
          map2 (fun i j -> `Add (i, j)) (int_bound 5) (int_bound 5);
          map2 (fun i j -> `Remove (i, j)) (int_bound 5) (int_bound 5);
          map2 (fun pos k -> `Lookup (pos, k)) (int_bound 1) (int_bound 5);
          map2 (fun k w -> `Select (k, w)) (int_bound 5) (int_bound 2);
        ])
  in
  Test.make ~name:"Relation agrees with a reference set under interleaved ops"
    ~count:300
    (make Gen.(list_size (int_range 1 60) gen_op))
    (fun ops ->
      let module R = Datalog.Relation in
      let open Logic in
      let tup i j = [ Term.sym (Printf.sprintf "a%d" i); Term.int j ] in
      let r = R.create () in
      let model = ref [] in
      let sorted l = List.sort Datalog.Tuple.compare l in
      let matches pattern t =
        match Unify.matches_list ~patterns:pattern t with
        | Some _ -> true
        | None -> false
      in
      List.for_all
        (fun op ->
          match op with
          | `Add (i, j) ->
            let t = tup i j in
            let fresh = not (List.mem t !model) in
            if fresh then model := t :: !model;
            R.add r t = fresh
          | `Remove (i, j) ->
            let t = tup i j in
            let present = List.mem t !model in
            model := List.filter (fun x -> x <> t) !model;
            R.remove r t = present
          | `Lookup (pos, k) ->
            let key =
              if pos = 0 then Term.sym (Printf.sprintf "a%d" k) else Term.int k
            in
            sorted (R.lookup r ~pos key)
            = sorted (List.filter (fun t -> List.nth t pos = key) !model)
          | `Select (k, which) ->
            let pattern =
              match which with
              | 0 -> [ Term.sym (Printf.sprintf "a%d" k); Term.var "V" ]
              | 1 -> [ Term.var "V"; Term.int k ]
              | _ -> [ Term.var "V"; Term.var "V" ] (* repeated var: no match *)
            in
            sorted (R.select r ~pattern)
            = sorted (List.filter (matches pattern) !model))
        ops
      && R.cardinal r = List.length !model
      && sorted (R.to_list r) = sorted !model)

(* One explicit seed threads every generator here; KIND_QCHECK_SEED
   replays a failing run exactly (the suite name carries the seed). *)
let qcheck_seed =
  match Sys.getenv_opt "KIND_QCHECK_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 0)
  | None -> 0

let suites =
  [
    ( Printf.sprintf "properties [seed %d]" qcheck_seed,
      List.map
        (QCheck_alcotest.to_alcotest
           ~rand:(Random.State.make [| qcheck_seed |]))
        [
          prop_tc_transitive_superset;
          prop_dc_contains_base_and_down;
          prop_traversal_region_contains_descendants;
          prop_ancestors_descendants_dual;
          prop_lub_laws;
          prop_index_monotone;
          prop_el_monotone;
          prop_aggregate_reference;
          prop_relation_model;
        ] );
  ]
