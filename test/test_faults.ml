(* Fault-matrix differential testing of the federation runtime: on
   randomly generated federations with seeded fault schedules, the
   degraded answer must be sound and the degradation report exact —

     answers(faulted)  ⊆  answers(fault-free)          (soundness)
     skipped(faulted)  =  sources the plan kills       (exactness)
     plan survivable   ⇒  answers(faulted) = answers(fault-free)
                                                       (recovery)
     same seed         ⇒  identical transcript         (replay)

   "Survivable" means every scheduled fault is absorbable by the
   default retry policy: delays only cost virtual time, and at most
   [attempts - 1] transients precede a success. Crashes and timeouts
   are not absorbable — those sources must be skipped, no more and no
   fewer.

   The run is deterministic: case [i] uses seed [base*10_000 + i] where
   [base] comes from KIND_FAULT_SEED (default 0). KIND_FAULT_CASES
   overrides the case count; every 10th case is additionally re-run
   from scratch and its transcript compared tick for tick. *)

open Mediation
module Term = Logic.Term
module Atom = Logic.Atom
module Molecule = Flogic.Molecule
module Fault = Wrapper.Fault
module Source = Wrapper.Source
module Capability = Wrapper.Capability

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

let cases = max 1 (env_int "KIND_FAULT_CASES" 200)
let base_seed = env_int "KIND_FAULT_SEED" 0

(* ------------------------------------------------------------------ *)
(* A tiny domain map: enough structure for anchors at different depths
   and a lub above every source, cheap enough for hundreds of cases.   *)

let tiny_dmap () =
  let open Domain_map.Dmap in
  List.fold_left
    (fun dm (sub, super) -> isa dm sub super)
    (add_concepts empty [ "thing"; "region"; "cell"; "fiber"; "spine"; "soma" ])
    [
      ("region", "thing");
      ("cell", "thing");
      ("fiber", "region");
      ("spine", "region");
      ("soma", "region");
    ]

let anchor_concepts = [ "region"; "cell"; "fiber"; "spine"; "soma" ]

(* ------------------------------------------------------------------ *)
(* Federation generator                                                *)

type scenario =
  | Ok_  (** reliable *)
  | Slow  (** a delay: costs virtual time, answers arrive *)
  | Flaky of int  (** k < attempts transient errors, then clean *)
  | Dead  (** crash on first contact: quarantined *)
  | Deaf  (** every call times out: retries exhausted *)

let scenario_plan = function
  | Ok_ -> Fault.Reliable
  | Slow -> Fault.Script [ { Fault.at = 1; fault = Fault.Delay 80 } ]
  | Flaky k ->
    Fault.Script
      (List.init k (fun i -> { Fault.at = i + 1; fault = Fault.Transient "flaky" }))
  | Dead -> Fault.Script [ { Fault.at = 1; fault = Fault.Crash } ]
  | Deaf -> Fault.Always Fault.Timeout

let survivable = function Ok_ | Slow | Flaky _ -> true | Dead | Deaf -> false

let gen_scenario st =
  match Random.State.int st 100 with
  | n when n < 40 -> Ok_
  | n when n < 55 -> Slow
  | n when n < 75 -> Flaky (1 + Random.State.int st 2)
  | n when n < 90 -> Dead
  | _ -> Deaf

let pick st xs = List.nth xs (Random.State.int st (List.length xs))

let gen_source st i =
  let name = Printf.sprintf "S%d" i in
  let schema =
    Gcm.Schema.make ~name
      ~classes:
        [ Gcm.Schema.class_def "c" ~methods:[ ("m", "number"); ("tag", "string") ] ]
      ()
  in
  let concept = pick st anchor_concepts in
  let nobj = 4 + Random.State.int st 5 in
  let data =
    List.concat
      (List.init nobj (fun j ->
           let id = Term.sym (Printf.sprintf "s%d_o%d" i j) in
           [
             Molecule.Isa (id, Term.sym "c");
             Molecule.Meth_val
               (id, "m", Term.float (float_of_int (Random.State.int st 5)));
             Molecule.Meth_val
               (id, "tag", Term.str (Printf.sprintf "t%d" (Random.State.int st 3)));
           ]))
  in
  Source.make ~name ~schema
    ~capabilities:
      [ Capability.scan_class "c"; Capability.select_class ~cls:"c" ~on:[ "m" ] ]
    ~anchors:[ ("c", concept, []) ]
    ~data ()

(* hot(X) :- X : region, X[m ->> V], V > 2 — an IVD whose extent mixes
   whatever sources anchor below [region] *)
let hot_ivd =
  let v = Term.var in
  [
    Molecule.rule
      (Molecule.Pred (Atom.make "hot" [ v "X" ]))
      [
        Molecule.Pos (Molecule.Isa (v "X", Term.sym "region"));
        Molecule.Pos (Molecule.Meth_val (v "X", "m", v "V"));
        Molecule.Cmp (Logic.Literal.Gt, v "V", Term.float 2.0);
      ];
  ]

type federation = {
  med : Mediator.t;
  names : string list;
  plans : (string * scenario) list;
  anchors : (string * string) list;  (** source, anchored concept *)
}

(* Build the same federation twice from one seed: once pristine (the
   oracle), once with the scheduled faults installed. *)
let build_federation st ~faulted =
  let nsrc = 2 + Random.State.int st 3 in
  let sources = List.init nsrc (gen_source st) in
  let scenarios = List.map (fun src -> (Source.name src, gen_scenario st)) sources in
  let med = Mediator.create (tiny_dmap ()) in
  List.iter
    (fun src ->
      match Mediator.register_source med src with
      | Ok () -> ()
      | Error e -> Alcotest.failf "register %s: %s" (Source.name src) e)
    sources;
  Mediator.add_ivd med hot_ivd;
  if faulted then
    List.iter
      (fun (name, sc) ->
        match Mediator.set_fault_plan med ~source:name (scenario_plan sc) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "set_fault_plan %s: %s" name e)
      scenarios;
  {
    med;
    names = List.map Source.name sources;
    plans = scenarios;
    anchors =
      List.map
        (fun src ->
          ( Source.name src,
            match Source.anchors src with (_, c, _) :: _ -> c | [] -> "" ))
        sources;
  }

(* ------------------------------------------------------------------ *)
(* Checks                                                              *)

let goals =
  let v = Term.var in
  [
    ("thing", [ Molecule.Pos (Molecule.Isa (v "X", Term.sym "thing")) ]);
    ("hot", [ Molecule.Pos (Molecule.Pred (Atom.make "hot" [ v "X" ])) ]);
  ]

let answers med lits =
  Mediator.query med lits
  |> List.map (fun s -> Format.asprintf "%a" Logic.Subst.pp s)
  |> List.sort_uniq compare

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* The replay witness of a faulted run: every per-source transcript and
   health counter, plus the runtime clock. *)
let transcript f =
  let per_source name =
    let ch =
      match Mediator.fault_channel f.med name with
      | Some ch -> ch
      | None -> Alcotest.failf "no channel for %s" name
    in
    let h = Runtime.health (Mediator.runtime f.med) name in
    Printf.sprintf "%s: calls=%d clock=%d faults=[%s] state=%s f=%d r=%d t=%d a=%d"
      name (Fault.calls ch) (Fault.clock ch)
      (String.concat ";"
         (List.map
            (fun (at, fault) ->
              Printf.sprintf "%d:%s" at (Fault.fault_to_string fault))
            (Fault.transcript ch)))
      (Runtime.state_to_string h.Runtime.state)
      h.Runtime.failures h.Runtime.retries h.Runtime.trips h.Runtime.absorbed
  in
  Printf.sprintf "clock=%d\n%s"
    (Runtime.clock (Mediator.runtime f.med))
    (String.concat "\n" (List.map per_source f.names))

let run_faulted seed =
  let f = build_federation (Random.State.make [| seed |]) ~faulted:true in
  let answ = List.map (fun (label, lits) -> (label, answers f.med lits)) goals in
  (f, answ)

let run_case seed =
  let oracle = build_federation (Random.State.make [| seed |]) ~faulted:false in
  let f, answ = run_faulted seed in
  Alcotest.(check (list string))
    (Printf.sprintf "seed %d: same generated federation" seed)
    oracle.names f.names;
  let expected_skipped =
    List.filter_map
      (fun (name, sc) -> if survivable sc then None else Some name)
      f.plans
  in
  let c = Mediator.completeness f.med in
  (* exactness: the report names the killed sources, no more, no fewer *)
  Alcotest.(check (list string))
    (Printf.sprintf "seed %d: skipped = killed" seed)
    expected_skipped
    (List.map fst c.Mediator.skipped);
  Alcotest.(check (list string))
    (Printf.sprintf "seed %d: contributed = survivors" seed)
    (List.filter (fun n -> not (List.mem n expected_skipped)) f.names)
    (List.sort compare c.Mediator.contributed);
  List.iter
    (fun (label, lits) ->
      let got = List.assoc label answ in
      let want = answers oracle.med lits in
      (* soundness: degradation never invents answers *)
      if not (subset got want) then
        Alcotest.failf "seed %d: %s: degraded answers ⊄ fault-free" seed label;
      (* recovery: a survivable schedule converges to the oracle *)
      if expected_skipped = [] then
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d: %s: survivable plan converges" seed label)
          want got)
    goals;
  (* suspect covers the IVD whenever a source anchored below [region]
     (hot's only class subgoal) was skipped *)
  let region_anchored =
    List.exists
      (fun name ->
        match List.assoc_opt name f.anchors with
        | Some ("region" | "fiber" | "spine" | "soma") -> true
        | _ -> false)
      expected_skipped
  in
  if region_anchored && not (List.mem "hot" c.Mediator.suspect) then
    Alcotest.failf "seed %d: hot missing from suspect set [%s]" seed
      (String.concat "," c.Mediator.suspect);
  (* replay: every 10th case re-runs the faulted build from scratch *)
  if seed mod 10 = 0 then begin
    let t1 = transcript f in
    let f2, answ2 = run_faulted seed in
    Alcotest.(check string)
      (Printf.sprintf "seed %d: replay transcript" seed)
      t1 (transcript f2);
    List.iter
      (fun (label, got) ->
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d: replay answers (%s)" seed label)
          got
          (List.assoc label answ2))
      answ
  end

let fault_matrix () =
  for i = 0 to cases - 1 do
    run_case ((base_seed * 10_000) + i)
  done

(* ------------------------------------------------------------------ *)
(* Directed: the Figure-3 revival path                                 *)

let fixed_federation () =
  build_federation (Random.State.make [| 7 |]) ~faulted:false

let test_revival () =
  let oracle = fixed_federation () in
  let f = fixed_federation () in
  let victim = List.hd f.names in
  let lits = List.assoc "thing" goals in
  let want = answers oracle.med lits in
  (match
     Mediator.set_fault_plan f.med ~source:victim
       (Fault.Script [ { Fault.at = 1; fault = Fault.Crash } ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let degraded = answers f.med lits in
  let c = Mediator.completeness f.med in
  Alcotest.(check (list string))
    "victim skipped" [ victim ]
    (List.map fst c.Mediator.skipped);
  Alcotest.(check bool) "degraded is a strict subset" true
    (subset degraded want && List.length degraded < List.length want);
  Alcotest.(check bool) "query counted as degraded" true
    (Mediator.degraded_queries f.med >= 1);
  let h = Runtime.health (Mediator.runtime f.med) victim in
  Alcotest.(check bool) "victim quarantined" true h.Runtime.quarantined;
  (match Mediator.revive_source f.med victim with
  | Ok () -> ()
  | Error e -> Alcotest.failf "revive: %s" e);
  Alcotest.(check (list string)) "revival restores the fixpoint" want
    (answers f.med lits);
  let c = Mediator.completeness f.med in
  Alcotest.(check (list string)) "nothing skipped after revival" []
    (List.map fst c.Mediator.skipped);
  Alcotest.(check bool) "victim contributes again" true
    (List.mem victim c.Mediator.contributed);
  let h = Runtime.health (Mediator.runtime f.med) victim in
  Alcotest.(check bool) "quarantine lifted" false h.Runtime.quarantined;
  Alcotest.(check bool) "lifetime trip count survives revival" true
    (h.Runtime.trips >= 1)

(* Directed: reviving a source mid-degradation must invalidate the
   cached answers whose completeness report listed it under [skipped] —
   a degraded answer cached before the revival must never be served
   after it. A cached entry that reads none of the revived source's
   reachable predicates survives. *)
let test_revival_cache_invalidation () =
  let oracle = fixed_federation () in
  let f = fixed_federation () in
  let victim = List.hd f.names in
  let lits = List.assoc "thing" goals in
  let want = answers oracle.med lits in
  (match
     Mediator.set_fault_plan f.med ~source:victim
       (Fault.Script [ { Fault.at = 1; fault = Fault.Crash } ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let degraded = answers f.med lits in
  Alcotest.(check bool) "degraded misses the victim's tuples" true
    (degraded <> want && subset degraded want);
  (* an unrelated entry: no predicate reads at all, so no skipped
     source can reach it — it must survive the revival *)
  let tautology = [ Molecule.Cmp (Logic.Literal.Gt, Term.float 3.0, Term.float 2.0) ] in
  ignore (answers f.med tautology);
  let s0 = Mediator.cache_stats f.med in
  ignore (answers f.med lits);
  let s1 = Mediator.cache_stats f.med in
  Alcotest.(check bool) "degraded answer was being served from cache" true
    (s1.Mediator.hits > s0.Mediator.hits);
  (match Mediator.revive_source f.med victim with
  | Ok () -> ()
  | Error e -> Alcotest.failf "revive: %s" e);
  let s2 = Mediator.cache_stats f.med in
  Alcotest.(check bool) "revival invalidated the degraded entries" true
    (s2.Mediator.invalidated > s1.Mediator.invalidated);
  (* the regression this guards: without the invalidation the next
     query is a cache hit on the stale degraded subset *)
  Alcotest.(check (list string)) "post-revival answers are complete" want
    (answers f.med lits);
  (* the read-free entry is still a hit *)
  let s3 = Mediator.cache_stats f.med in
  ignore (answers f.med tautology);
  let s4 = Mediator.cache_stats f.med in
  Alcotest.(check bool) "unrelated cached entry survived the revival" true
    (s4.Mediator.hits > s3.Mediator.hits)

(* Directed: wire corruption is retryable, not fatal — and a persistent
   corrupter is skipped with a corruption reason. *)
let test_corruption_failure () =
  let f = fixed_federation () in
  let victim = List.hd f.names in
  (match
     Mediator.set_fault_plan f.med ~source:victim (Fault.Always (Fault.Truncate 500))
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore (Mediator.query f.med (List.assoc "thing" goals));
  let c = Mediator.completeness f.med in
  (match List.assoc_opt victim c.Mediator.skipped with
  | Some reason ->
    Alcotest.(check bool)
      (Printf.sprintf "reason mentions corruption: %s" reason)
      true
      (contains reason "corrupt")
  | None -> Alcotest.fail "persistent corrupter was not skipped");
  let h = Runtime.health (Mediator.runtime f.med) victim in
  Alcotest.(check int) "all attempts burned"
    (Runtime.policy (Mediator.runtime f.med)).Runtime.retry.Runtime.attempts
    h.Runtime.failures

(* Directed: a single transient corruption is absorbed by one retry. *)
let test_corruption_absorbed () =
  let oracle = fixed_federation () in
  let f = fixed_federation () in
  let victim = List.hd f.names in
  (match
     Mediator.set_fault_plan f.med ~source:victim
       (Fault.Script [ { Fault.at = 1; fault = Fault.Garble } ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let lits = List.assoc "thing" goals in
  Alcotest.(check (list string)) "one garbled payload is absorbed"
    (answers oracle.med lits) (answers f.med lits);
  let h = Runtime.health (Mediator.runtime f.med) victim in
  Alcotest.(check bool) "the retry was counted" true (h.Runtime.retries >= 1);
  Alcotest.(check bool) "the fetch was absorbed" true (h.Runtime.absorbed >= 1)

(* Directed: stale capability answers — after the fault fires the
   channel over-advertises; the mediator sees the inflated set. *)
let test_stale_capabilities () =
  let f = fixed_federation () in
  let victim = List.hd f.names in
  let honest = Mediator.capabilities_of f.med victim in
  (match
     Mediator.set_fault_plan f.med ~source:victim
       (Fault.Script [ { Fault.at = 1; fault = Fault.Stale_caps } ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore (Mediator.query f.med (List.assoc "thing" goals));
  let ch =
    match Mediator.fault_channel f.med victim with
    | Some ch -> ch
    | None -> Alcotest.fail "no channel"
  in
  Alcotest.(check bool) "stale flag latched" true (Fault.stale ch);
  Alcotest.(check bool) "capabilities over-advertised" true
    (Mediator.capabilities_of f.med victim <> honest);
  (* over-advertised ⊇ honest: a Stale_caps source still answers what it
     really can; the data path stays sound *)
  let c = Mediator.completeness f.med in
  Alcotest.(check (list string)) "stale caps do not skip the source" []
    (List.map fst c.Mediator.skipped)

let suites =
  [
    ( "faults",
      [
        Alcotest.test_case
          (Printf.sprintf
             "%d random federations: degraded ⊆ fault-free, skipped exact, \
              replay identical"
             cases)
          `Quick fault_matrix;
        Alcotest.test_case "crash, quarantine, Figure-3 revival" `Quick
          test_revival;
        Alcotest.test_case "revival invalidates degraded cached answers" `Quick
          test_revival_cache_invalidation;
        Alcotest.test_case "persistent corruption skips the source" `Quick
          test_corruption_failure;
        Alcotest.test_case "transient corruption is absorbed by a retry" `Quick
          test_corruption_absorbed;
        Alcotest.test_case "stale capability answers over-advertise" `Quick
          test_stale_capabilities;
      ] );
  ]
