(* Tests for domain maps: graph structure, closure operations, lub,
   semantic index, regions, dynamic registration (Fig 3), execution. *)

open Domain_map
module C = Dl.Concept

let n = C.name

(* -------------------------------------------------------------------- *)
(* Structure *)

let test_build_and_inspect () =
  let dm = Dmap.empty in
  let dm = Dmap.isa dm "spine" "compartment" in
  let dm = Dmap.ex dm ~role:"contains" "spine" "protein" in
  let dm = Dmap.all_ dm ~role:"has" "my_neuron" "my_dendrite" in
  Alcotest.(check bool) "concepts exist" true (Dmap.mem dm "spine" && Dmap.mem dm "protein");
  Alcotest.(check (list string)) "roles" [ "contains"; "has" ] (Dmap.roles dm);
  let nnodes, nedges = Dmap.size dm in
  Alcotest.(check int) "nodes" 5 nnodes;
  Alcotest.(check int) "edges" 3 nedges;
  Alcotest.(check int) "out edges of spine" 2 (List.length (Dmap.out_edges dm "spine"))

let test_anonymous_nodes () =
  let dm, or_id = Dmap.or_node Dmap.empty [ "gpe"; "gpi" ] in
  let dm = Dmap.ex dm ~role:"proj" "msn" or_id in
  Alcotest.(check (option Alcotest.bool)) "or kind" (Some true)
    (Option.map (fun k -> k = Dmap.Or_node) (Dmap.kind_of dm or_id));
  Alcotest.(check (list string)) "members" [ "gpe"; "gpi" ] (Dmap.members dm or_id);
  let links = Dmap.role_links dm "proj" in
  Alcotest.(check int) "no definite proj" 0 (List.length links.Dmap.definite);
  Alcotest.(check (list (pair string string))) "possible proj"
    [ ("msn", "gpe"); ("msn", "gpi") ]
    links.Dmap.possible;
  (* concepts excludes anonymous nodes *)
  Alcotest.(check bool) "anon not a concept" false
    (List.mem or_id (Dmap.concepts dm))

let test_axiom_roundtrip_fig1 () =
  let dm = Neuro.Anatom.fig1 in
  (match Dmap.validate dm with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fig1 invalid: %s" e);
  (* Round trip through axioms preserves the concept-level links. *)
  let dm2 = Dmap.of_axioms (Dmap.to_axioms dm) in
  let norm l = List.sort_uniq compare l in
  Alcotest.(check bool) "isa links preserved" true
    (norm (Dmap.isa_links dm).Dmap.definite = norm (Dmap.isa_links dm2).Dmap.definite);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r ^ " links preserved") true
        (norm (Dmap.role_links dm r).Dmap.definite
        = norm (Dmap.role_links dm2 r).Dmap.definite))
    (Dmap.roles dm)

let test_fig1_content () =
  let dm = Neuro.Anatom.fig1 in
  let isa = (Dmap.isa_links dm).Dmap.definite in
  Alcotest.(check bool) "purkinje isa spiny_neuron" true
    (List.mem ("purkinje_cell", "spiny_neuron") isa);
  Alcotest.(check bool) "spine isa ion_regulating_component" true
    (List.mem ("spine", "ion_regulating_component") isa);
  let has = (Dmap.role_links dm "has").Dmap.definite in
  Alcotest.(check bool) "dendrite has branch" true
    (List.mem ("dendrite", "branch") has);
  let contains = (Dmap.role_links dm "contains").Dmap.definite in
  Alcotest.(check bool) "spine contains ibp" true
    (List.mem ("spine", "ion_binding_protein") contains)

(* -------------------------------------------------------------------- *)
(* Closures *)

let test_tc () =
  let pairs = [ ("a", "b"); ("b", "c"); ("c", "d") ] in
  let tc = Closure.tc pairs in
  Alcotest.(check bool) "a->d" true (List.mem ("a", "d") tc);
  Alcotest.(check int) "6 pairs" 6 (List.length tc);
  (* idempotence *)
  Alcotest.(check bool) "idempotent" true
    (List.sort_uniq compare (Closure.tc tc) = List.sort_uniq compare tc)

let test_dc_propagation () =
  (* neuron has compartment; purkinje isa* neuron => purkinje has
     compartment (down); spine isa compartment => neuron has ... (up is
     about target generalisation: dendrite isa compartment, neuron has
     dendrite => neuron has compartment). *)
  let dm =
    Dmap.empty
    |> fun d -> Dmap.isa d "purkinje" "neuron"
    |> fun d -> Dmap.isa d "dendrite" "compartment"
    |> fun d -> Dmap.ex d ~role:"has" "neuron" "dendrite"
  in
  let star = Closure.has_a_star dm in
  Alcotest.(check bool) "base link kept" true (List.mem ("neuron", "dendrite") star);
  Alcotest.(check bool) "down: purkinje has dendrite" true
    (List.mem ("purkinje", "dendrite") star);
  Alcotest.(check bool) "up: neuron has compartment" true
    (List.mem ("neuron", "compartment") star);
  Alcotest.(check bool) "no invented links" false (List.mem ("dendrite", "neuron") star)

let test_has_a_star_not_transitive () =
  (* a has b, b has c: has_a_star must NOT contain (a, c) — the paper
     keeps the closure non-transitive and traverses recursively. *)
  let dm = Dmap.ex (Dmap.ex Dmap.empty ~role:"has" "a" "b") ~role:"has" "b" "c" in
  let star = Closure.has_a_star dm in
  Alcotest.(check bool) "direct links only" false (List.mem ("a", "c") star);
  (* but the recursive traversal reaches c *)
  Alcotest.(check (list string)) "traversal reaches all" [ "a"; "b"; "c" ]
    (Closure.reachable star "a")

let test_fig1_has_a_star () =
  (* The introduction's chain: purkinje/pyramidal cells have dendrites,
     dendrites have branches, branches (shafts) have spines. Following
     has links alone reaches spines (spiny neurons have spines by
     definition); reaching branches additionally requires descending
     the isa hierarchy mid-traversal (compartment ~> dendrite), which
     is what Region.downward does. *)
  let dm = Neuro.Anatom.fig1 in
  let star = Closure.has_a_star dm in
  Alcotest.(check bool) "purkinje has compartment (down+up)" true
    (List.mem ("purkinje_cell", "compartment") star);
  let from_purkinje = Closure.reachable star "purkinje_cell" in
  Alcotest.(check bool) "spines reachable from purkinje" true
    (List.mem "spine" from_purkinje);
  Alcotest.(check bool) "branch not reachable by has alone" false
    (List.mem "branch" from_purkinje);
  let region = Region.downward dm ~root:"purkinje_cell" () in
  Alcotest.(check bool) "branch in traversal region" true
    (Region.mem region "branch")

let test_descendants_ancestors () =
  let dm = Neuro.Anatom.fig1 in
  Alcotest.(check bool) "purkinje descendant of neuron" true
    (List.mem "purkinje_cell" (Closure.descendants dm "neuron"));
  Alcotest.(check bool) "ancestors of purkinje include neuron" true
    (List.mem "neuron" (Closure.ancestors dm "purkinje_cell"));
  (* eqv participates: spiny_neuron == neuron AND ∃has.spine gives
     spiny_neuron -> and-node; and isa through eqv symmetric *)
  Alcotest.(check bool) "self in descendants" true
    (List.mem "neuron" (Closure.descendants dm "neuron"))

(* -------------------------------------------------------------------- *)
(* Lub *)

let region_map =
  (* brain has cerebellum/hippocampus; both regions of brain.
     cerebellum has purkinje, hippocampus has pyramidal. *)
  Dmap.empty
  |> fun d -> Dmap.isa d "cerebellum" "brain_region"
  |> fun d -> Dmap.isa d "hippocampus" "brain_region"
  |> fun d -> Dmap.isa d "brain_region" "nervous_system_part"
  |> fun d -> Dmap.ex d ~role:"has" "brain" "cerebellum"
  |> fun d -> Dmap.ex d ~role:"has" "brain" "hippocampus"
  |> fun d -> Dmap.ex d ~role:"has" "cerebellum" "purkinje_layer"
  |> fun d -> Dmap.isa d "purkinje_layer" "cell_layer"

let test_lub () =
  Alcotest.(check (list string)) "common ancestor"
    [ "brain_region" ]
    (Lub.lub region_map [ "cerebellum"; "hippocampus" ]);
  Alcotest.(check (option string)) "unique" (Some "brain_region")
    (Lub.lub_unique region_map [ "cerebellum"; "hippocampus" ]);
  Alcotest.(check (list string)) "lub of single" [ "cerebellum" ]
    (Lub.lub region_map [ "cerebellum" ]);
  Alcotest.(check (option string)) "disjoint concepts" None
    (Lub.lub_unique region_map [ "cerebellum"; "unrelated" ])

let test_lub_minimality () =
  (* both brain_region and nervous_system_part are common ancestors;
     lub keeps only the minimal one. *)
  let lubs = Lub.lub region_map [ "cerebellum"; "hippocampus" ] in
  Alcotest.(check bool) "nervous_system_part excluded" false
    (List.mem "nervous_system_part" lubs)

let test_glb () =
  let dm =
    Dmap.empty
    |> fun d -> Dmap.isa d "x" "a"
    |> fun d -> Dmap.isa d "x" "b"
    |> fun d -> Dmap.isa d "y" "x"
  in
  Alcotest.(check (list string)) "glb is maximal common descendant" [ "x" ]
    (Lub.glb dm [ "a"; "b" ])

(* -------------------------------------------------------------------- *)
(* Semantic index *)

let sample_index =
  Index.empty
  |> fun i ->
  Index.add i ~source:"SYNAPSE" ~cm_class:"spine_measurement"
    ~concept:"spine" ~context:[ "hippocampus" ] ()
  |> fun i ->
  Index.add i ~source:"NCMIR" ~cm_class:"protein_amount" ~concept:"purkinje_cell" ()
  |> fun i ->
  Index.add i ~source:"SENSELAB" ~cm_class:"neurotransmission" ~concept:"neurotransmission" ()

let test_index_basics () =
  Alcotest.(check (list string)) "sources" [ "NCMIR"; "SENSELAB"; "SYNAPSE" ]
    (Index.sources sample_index);
  Alcotest.(check (list string)) "concepts of class" [ "spine" ]
    (Index.concepts_of sample_index ~source:"SYNAPSE" ~cm_class:"spine_measurement")

let test_index_source_selection () =
  let dm = Neuro.Anatom.fig1 in
  (* Asking at 'compartment' must find SYNAPSE (spine isa* compartment
     via spine -> ion_regulating_component? no: spine is a compartment
     via shaft/branch? spine isa compartment does not hold in fig1) —
     use 'ion_regulating_component' instead, which spine isa's. *)
  Alcotest.(check (list string)) "descendant anchoring found" [ "SYNAPSE" ]
    (Index.sources_at dm sample_index ~concept:"ion_regulating_component");
  (* purkinje data answers spiny_neuron questions *)
  Alcotest.(check (list string)) "NCMIR at spiny_neuron" [ "NCMIR" ]
    (Index.sources_at dm sample_index ~concept:"spiny_neuron");
  (* exact concept *)
  Alcotest.(check (list string)) "exact" [ "SYNAPSE" ]
    (Index.sources_at dm sample_index ~concept:"spine");
  (* nothing anchored *)
  Alcotest.(check (list string)) "none" []
    (Index.sources_at dm sample_index ~concept:"soma");
  Alcotest.(check (list string)) "multi-concept union" [ "NCMIR"; "SYNAPSE" ]
    (Index.sources_for dm sample_index ~concepts:[ "spine"; "purkinje_cell" ])

let test_index_remove () =
  let i = Index.remove_source sample_index "NCMIR" in
  Alcotest.(check (list string)) "removed" [ "SENSELAB"; "SYNAPSE" ] (Index.sources i)

(* -------------------------------------------------------------------- *)
(* Region of correspondence *)

let test_region_downward () =
  let dm = Neuro.Anatom.fig1 in
  let r = Region.downward dm ~root:"dendrite" () in
  Alcotest.(check bool) "contains spine" true (Region.mem r "spine");
  Alcotest.(check bool) "contains branch" true (Region.mem r "branch");
  Alcotest.(check bool) "excludes soma" false (Region.mem r "soma")

let test_region_correspondence () =
  let dm = Neuro.Anatom.fig1 in
  let idx =
    Index.empty
    |> fun i -> Index.add i ~source:"SYNAPSE" ~cm_class:"m" ~concept:"spine" ()
    |> fun i -> Index.add i ~source:"NCMIR" ~cm_class:"p" ~concept:"dendrite" ()
  in
  match Region.correspondence dm idx ~source1:"SYNAPSE" ~source2:"NCMIR" () with
  | None -> Alcotest.fail "expected a region"
  | Some r ->
    Alcotest.(check bool) "covers spine" true (Region.mem r "spine");
    Alcotest.(check bool) "covers dendrite" true (Region.mem r "dendrite");
    Alcotest.(check bool) "root in region" true (Region.mem r r.Region.root)

(* -------------------------------------------------------------------- *)
(* Registration (Fig 3) *)

let test_register_fig3 () =
  let dm = Neuro.Anatom.fig3_base in
  match Register.register dm Neuro.Anatom.fig3_registration with
  | Error e -> Alcotest.failf "registration failed: %s" e
  | Ok out ->
    Alcotest.(check (list string)) "new concepts"
      [ "my_dendrite"; "my_neuron" ]
      out.Register.added_concepts;
    let dm' = out.Register.dmap in
    (* my_neuron isa medium_spiny_neuron *)
    Alcotest.(check bool) "my_neuron placed" true
      (List.mem "medium_spiny_neuron" (Closure.ancestors dm' "my_neuron"));
    (* inherited + refined projection: my_neuron definitely projects to
       globus_pallidus_external *)
    let proj = (Dmap.role_links dm' "proj").Dmap.definite in
    Alcotest.(check bool) "definite projection" true
      (List.mem ("my_neuron", "globus_pallidus_external") proj);
    (* the base MSN keeps only possible projections *)
    let poss = (Dmap.role_links dm' "proj").Dmap.possible in
    Alcotest.(check bool) "msn possible projection" true
      (List.mem ("medium_spiny_neuron", "globus_pallidus_external") poss);
    Alcotest.(check bool) "msn has no definite projection" false
      (List.exists (fun (a, _) -> a = "medium_spiny_neuron") proj)

let test_register_unknown_warns () =
  let dm = Neuro.Anatom.fig3_base in
  let ax = [ C.subsumes (n "brand_new") (n "never_heard_of") ] in
  (match Register.register dm ax with
  | Ok out -> Alcotest.(check bool) "warned" true (out.Register.warnings <> [])
  | Error e -> Alcotest.failf "non-strict must accept: %s" e);
  match Register.register ~strict:true dm ax with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict must reject unknown concepts"

let test_register_unsat_rejected () =
  let dm =
    Dmap.of_axioms
      [
        C.subsumes (n "a") (n "b");
        C.subsumes (C.conj [ n "b"; n "c" ]) C.Bot;
      ]
  in
  let ax = [ C.subsumes (n "bad") (C.conj [ n "a"; n "c" ]) ] in
  match Register.register dm ax with
  | Error e ->
    Alcotest.(check bool) "mentions unsatisfiability" true
      (String.length e > 0)
  | Ok _ -> Alcotest.fail "unsatisfiable registration accepted"

let test_register_classification () =
  let dm = Neuro.Anatom.fig3_base in
  match Register.register dm Neuro.Anatom.fig3_registration with
  | Error e -> Alcotest.failf "registration failed: %s" e
  | Ok out ->
    (* my_neuron's EL-classifiable subsumers include the MSN chain. *)
    (match Register.classification out.Register.dmap "my_neuron" with
    | Ok supers ->
      Alcotest.(check bool) "classified under spiny_neuron" true
        (List.mem "spiny_neuron" supers && List.mem "neuron" supers)
    | Error f -> Alcotest.failf "classification failed: %s" f)

(* -------------------------------------------------------------------- *)
(* Execution on the engine *)

let test_to_program_closures () =
  let dm = Neuro.Anatom.fig1 in
  let t, _warnings = To_program.program ~include_instance_rules:false dm in
  let db = Flogic.Fl_program.run t in
  let s = Logic.Term.sym in
  (* engine-level has_a_star matches the pure-OCaml closure *)
  let star_engine =
    Datalog.Engine.answers db
      (Logic.Atom.make To_program.has_a_star_p [ Logic.Term.var "X"; Logic.Term.var "Y" ])
    |> List.filter_map (function
         | [ Logic.Term.Const (Logic.Term.Sym a); Logic.Term.Const (Logic.Term.Sym b) ] ->
           Some (a, b)
         | _ -> None)
    |> List.sort_uniq compare
  in
  let star_ocaml = List.sort_uniq compare (Closure.has_a_star dm) in
  Alcotest.(check int) "same cardinality" (List.length star_ocaml)
    (List.length star_engine);
  Alcotest.(check bool) "same content" true (star_engine = star_ocaml);
  Alcotest.(check bool) "tc_isa present" true
    (Datalog.Database.mem db
       (Logic.Atom.make To_program.tc_isa_p [ s "purkinje_cell"; s "neuron" ]))

let test_to_program_quadratic_equivalent () =
  let dm = Neuro.Anatom.fig1 in
  let run quadratic_tc =
    let t, _ = To_program.program ~quadratic_tc ~include_instance_rules:false dm in
    let db = Flogic.Fl_program.run t in
    Datalog.Engine.answers db
      (Logic.Atom.make To_program.tc_isa_p [ Logic.Term.var "X"; Logic.Term.var "Y" ])
    |> List.length
  in
  Alcotest.(check int) "linear = quadratic tc" (run false) (run true)

let test_instance_level_execution () =
  (* Fig 1 in assertion mode: a concrete purkinje cell gets placeholder
     structure obeying the domain knowledge. *)
  let dm = Neuro.Anatom.fig1 in
  let t, _ = To_program.program ~mode:Dl.Translate.Assertion dm in
  let s = Logic.Term.sym in
  let t = Flogic.Fl_program.add_facts t [ Flogic.Molecule.isa (s "p1") (s "purkinje_cell") ] in
  let db = Flogic.Fl_program.run t in
  (* p1 is classified upward... *)
  Alcotest.(check bool) "isa spiny_neuron" true
    (List.mem (s "p1") (Flogic.Fl_program.instances_of db "spiny_neuron"));
  (* ...and the ∃has.spine of spiny_neuron materialises a placeholder. *)
  let spines = Flogic.Fl_program.instances_of db "spine" in
  Alcotest.(check bool) "placeholder spine exists" true
    (List.exists Dl.Translate.is_placeholder spines)

let suites =
  [
    ( "dmap.structure",
      [
        Alcotest.test_case "build/inspect" `Quick test_build_and_inspect;
        Alcotest.test_case "anonymous nodes" `Quick test_anonymous_nodes;
        Alcotest.test_case "fig1 axiom roundtrip" `Quick test_axiom_roundtrip_fig1;
        Alcotest.test_case "fig1 content" `Quick test_fig1_content;
      ] );
    ( "dmap.closure",
      [
        Alcotest.test_case "tc" `Quick test_tc;
        Alcotest.test_case "dc propagation" `Quick test_dc_propagation;
        Alcotest.test_case "has_a_star non-transitive" `Quick test_has_a_star_not_transitive;
        Alcotest.test_case "fig1 has_a_star" `Quick test_fig1_has_a_star;
        Alcotest.test_case "descendants/ancestors" `Quick test_descendants_ancestors;
      ] );
    ( "dmap.lub",
      [
        Alcotest.test_case "lub" `Quick test_lub;
        Alcotest.test_case "minimality" `Quick test_lub_minimality;
        Alcotest.test_case "glb" `Quick test_glb;
      ] );
    ( "dmap.index",
      [
        Alcotest.test_case "basics" `Quick test_index_basics;
        Alcotest.test_case "source selection" `Quick test_index_source_selection;
        Alcotest.test_case "remove source" `Quick test_index_remove;
      ] );
    ( "dmap.region",
      [
        Alcotest.test_case "downward" `Quick test_region_downward;
        Alcotest.test_case "correspondence" `Quick test_region_correspondence;
      ] );
    ( "dmap.register",
      [
        Alcotest.test_case "fig3 registration" `Quick test_register_fig3;
        Alcotest.test_case "unknown concepts" `Quick test_register_unknown_warns;
        Alcotest.test_case "unsat rejected" `Quick test_register_unsat_rejected;
        Alcotest.test_case "classification" `Quick test_register_classification;
      ] );
    ( "dmap.execute",
      [
        Alcotest.test_case "closure rules" `Quick test_to_program_closures;
        Alcotest.test_case "quadratic tc equivalent" `Quick test_to_program_quadratic_equivalent;
        Alcotest.test_case "instance level" `Quick test_instance_level_execution;
      ] );
  ]
