(* Unit tests for the Example 4 aggregate operator (distribution trees)
   and supporting pieces that the integration tests exercise only
   indirectly. *)

open Mediation
module Dmap = Domain_map.Dmap

let dm =
  (* root -has-> a -has-> b; c isa a (so c is visited via isa descent) *)
  Dmap.empty
  |> fun d -> Dmap.ex d ~role:"has" "root" "a"
  |> fun d -> Dmap.ex d ~role:"has" "a" "b"
  |> fun d -> Dmap.isa d "c" "a"

let measure values concept =
  match List.assoc_opt concept values with Some vs -> vs | None -> []

let test_tree_shape () =
  let tree =
    Aggregate.distribution dm ~root:"root"
      ~measure:(measure [ ("a", [ 1.0; 2.0 ]); ("b", [ 4.0 ]); ("c", [ 8.0 ]) ])
  in
  Alcotest.(check string) "root" "root" tree.Aggregate.concept;
  Alcotest.(check (float 1e-9)) "rollup" 15.0 tree.Aggregate.total;
  Alcotest.(check (float 1e-9)) "root own" 0.0 tree.Aggregate.own;
  Alcotest.(check int) "four nodes" 4 (Aggregate.size tree);
  Alcotest.(check int) "depth" 3 (Aggregate.depth tree)

let test_visit_once () =
  (* diamond: root has x, root has y, x has z, y has z — z counted once *)
  let dm =
    Dmap.empty
    |> fun d -> Dmap.ex d ~role:"has" "root" "x"
    |> fun d -> Dmap.ex d ~role:"has" "root" "y"
    |> fun d -> Dmap.ex d ~role:"has" "x" "z"
    |> fun d -> Dmap.ex d ~role:"has" "y" "z"
  in
  let tree =
    Aggregate.distribution dm ~root:"root" ~measure:(measure [ ("z", [ 5.0 ]) ])
  in
  Alcotest.(check (float 1e-9)) "z once" 5.0 tree.Aggregate.total

let test_flatten_prune_to_term () =
  let tree =
    Aggregate.distribution dm ~root:"root"
      ~measure:(measure [ ("b", [ 4.0 ]) ])
  in
  let flat = Aggregate.flatten tree in
  Alcotest.(check (option (float 1e-9))) "flatten finds b" (Some 4.0)
    (List.assoc_opt "b" flat);
  let pruned = Aggregate.prune tree in
  (* c has no mass; pruned tree keeps only the a-b spine *)
  Alcotest.(check bool) "c pruned" false
    (List.mem_assoc "c" (Aggregate.flatten pruned));
  (* term rendering is a ground dist/cons structure *)
  let t = Aggregate.to_term tree in
  Alcotest.(check bool) "ground term" true (Logic.Term.is_ground t);
  match t with
  | Logic.Term.App ("dist", [ Logic.Term.Const (Logic.Term.Sym "root"); _; _ ]) -> ()
  | _ -> Alcotest.fail "unexpected term shape"

let test_empty_measure () =
  let tree = Aggregate.distribution dm ~root:"root" ~measure:(fun _ -> []) in
  Alcotest.(check (float 1e-9)) "all zero" 0.0 tree.Aggregate.total;
  Alcotest.(check int) "prune keeps root" 1 (Aggregate.size (Aggregate.prune tree))

(* property: total = sum of own over random measures *)
let prop_rollup =
  QCheck.Test.make ~name:"tree total = sum of owns" ~count:100
    QCheck.(list_of_size Gen.(int_bound 6) (pair (oneofl [ "a"; "b"; "c"; "root" ]) (list_of_size Gen.(int_bound 3) (float_bound_inclusive 10.0))))
    (fun values ->
      let tree =
        Aggregate.distribution dm ~root:"root"
          ~measure:(fun c ->
            List.concat_map (fun (c', vs) -> if c = c' then vs else []) values)
      in
      let rec own_sum t =
        t.Aggregate.own
        +. List.fold_left (fun a c -> a +. own_sum c) 0.0 t.Aggregate.children
      in
      Float.abs (own_sum tree -. tree.Aggregate.total) < 1e-6)

let suites =
  [
    ( "aggregate",
      [
        Alcotest.test_case "tree shape" `Quick test_tree_shape;
        Alcotest.test_case "diamond visits once" `Quick test_visit_once;
        Alcotest.test_case "flatten/prune/to_term" `Quick test_flatten_prune_to_term;
        Alcotest.test_case "empty measure" `Quick test_empty_measure;
        QCheck_alcotest.to_alcotest prop_rollup;
      ] );
  ]
