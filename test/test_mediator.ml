(* Integration tests for the mediator: registration, lifting,
   namespacing, IVDs, the Section 5 plan with ablations, and the
   structural baseline. *)

open Mediation
module Molecule = Flogic.Molecule
module Source = Wrapper.Source

let s = Logic.Term.sym
let v = Logic.Term.var

let params = { Neuro.Sources.seed = 7; Neuro.Sources.scale = 30 }

let fresh_mediator ?config () = Neuro.Sources.standard_mediator ?config params

(* -------------------------------------------------------------------- *)
(* Namespacing *)

let test_namespace () =
  Alcotest.(check string) "qualify" "NCMIR.protein"
    (Namespace.qualify ~source:"NCMIR" "protein");
  Alcotest.(check (option (pair string string))) "split"
    (Some ("NCMIR", "protein"))
    (Namespace.split "NCMIR.protein");
  let schema =
    Gcm.Schema.make ~name:"LAB"
      ~classes:
        [
          Gcm.Schema.class_def "neuron" ~supers:[ "cell"; "thing" ];
          Gcm.Schema.class_def "cell";
        ]
      ~relations:[ ("has", [ ("whole", "neuron"); ("part", "external_part") ]) ]
      ()
  in
  let ns = Namespace.schema ~source:"LAB" schema in
  Alcotest.(check (list string)) "classes qualified"
    [ "LAB.neuron"; "LAB.cell" ]
    (Gcm.Schema.class_names ns);
  (match ns.Gcm.Schema.classes with
  | [ n; _ ] ->
    Alcotest.(check (list string)) "own super qualified, foreign kept"
      [ "LAB.cell"; "thing" ] n.Gcm.Schema.supers
  | _ -> Alcotest.fail "class shape");
  match ns.Gcm.Schema.relations with
  | [ (r, avs) ] ->
    Alcotest.(check string) "relation qualified" "LAB.has" r;
    Alcotest.(check (list string)) "attr classes"
      [ "LAB.neuron"; "external_part" ]
      (List.map snd avs)
  | _ -> Alcotest.fail "relation shape"

(* -------------------------------------------------------------------- *)
(* Registration and materialization *)

let test_registration () =
  let med = fresh_mediator () in
  Alcotest.(check (list string)) "sources registered"
    [ "SYNAPSE"; "NCMIR"; "SENSELAB" ]
    (List.map Source.name (Mediator.sources med));
  (* duplicate registration rejected *)
  (match Mediator.register_source med (Neuro.Sources.synapse params) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate registration accepted");
  (* anchors landed in the index *)
  Alcotest.(check (list string)) "index sources"
    [ "NCMIR"; "SENSELAB"; "SYNAPSE" ]
    (Domain_map.Index.sources (Mediator.index med))

let test_lifting () =
  let med = fresh_mediator () in
  (* source data is visible at the conceptual level: SYNAPSE spines are
     instances of the DM concept 'spine' via the anchor rule, hence of
     ion_regulating_component via the DM isa edge. *)
  let members cls =
    Mediator.query med [ Molecule.Pos (Molecule.isa (v "X") (s cls)) ]
    |> List.length
  in
  Alcotest.(check bool) "namespaced class populated" true
    (members "SYNAPSE.spine_measure" > 0);
  Alcotest.(check bool) "anchored into DM concept" true
    (members "spine" >= members "SYNAPSE.spine_measure");
  Alcotest.(check bool) "DM isa closes upward" true
    (members "ion_regulating_component" >= members "SYNAPSE.spine_measure")

let test_query_text () =
  let med = fresh_mediator () in
  match
    Mediator.query_text med
      "?- X : 'SENSELAB.neurotransmission', X[organism ->> \"rat\"]."
  with
  | Ok answers -> Alcotest.(check bool) "rat rows exist" true (answers <> [])
  | Error e -> Alcotest.failf "query failed: %s" e

let test_ivd () =
  let med = fresh_mediator () in
  (match
     Mediator.add_ivd_text med
       {| calcium_protein(P) :-
            X : 'NCMIR.protein', X[name ->> P], X[ion_bound ->> calcium]. |}
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "IVD rejected: %s" e);
  let answers =
    Mediator.query med [ Molecule.Pos (Molecule.pred "calcium_protein" [ v "P" ]) ]
  in
  Alcotest.(check int) "five calcium binders"
    (List.length Neuro.Sources.calcium_binders)
    (List.length answers)

let test_extend_dmap () =
  let med = fresh_mediator () in
  (match Mediator.extend_dmap med Neuro.Anatom.fig3_registration with
  | Ok () -> ()
  | Error e -> Alcotest.failf "extension failed: %s" e);
  Alcotest.(check bool) "my_neuron in map" true
    (Domain_map.Dmap.mem (Mediator.dmap med) "my_neuron")

let test_register_via_xml () =
  let med = Mediator.create Neuro.Anatom.full in
  let doc =
    {|<gcm source="W">
        <class name="observation"><method name="value" range="number"/></class>
        <instance id="o1" class="observation"/>
        <value object="o1" method="value">3</value>
        <anchor class="observation" concept="spine"/>
      </gcm>|}
  in
  (match
     Mediator.register_xml med ~format:"gcm-xml" ~source_name:"WIRE"
       (Xmlkit.Parse.parse_exn doc)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "xml registration failed: %s" e);
  Alcotest.(check (list string)) "selected by concept" [ "WIRE" ]
    (Mediator.select_sources med ~concepts:[ "spine" ])

(* -------------------------------------------------------------------- *)
(* Source selection *)

let test_source_selection () =
  let med = fresh_mediator () in
  (* purkinje_cell + spine: NCMIR has amounts there; SYNAPSE anchors at
     spine too. SENSELAB anchors only at the neurotransmission concept. *)
  let chosen = Mediator.select_sources med ~concepts:[ "purkinje_cell"; "spine" ] in
  Alcotest.(check bool) "NCMIR selected" true (List.mem "NCMIR" chosen);
  Alcotest.(check bool) "SENSELAB not selected" false (List.mem "SENSELAB" chosen);
  (* broadcast when the index is off *)
  Mediator.set_config med
    { (Mediator.config med) with Mediator.use_semantic_index = false };
  Alcotest.(check int) "broadcast contacts all" 3
    (List.length (Mediator.select_sources med ~concepts:[ "purkinje_cell" ]))

(* -------------------------------------------------------------------- *)
(* Section 5 *)

let run_q5 ?config () =
  let med = fresh_mediator ?config () in
  match
    Section5.calcium_binding_query med ~organism:"rat"
      ~transmitting_compartment:"parallel_fiber" ~ion:"calcium" ()
  with
  | Ok o -> (med, o)
  | Error e -> Alcotest.failf "section 5 query failed: %s" e

let test_section5_answers () =
  let _, o = run_q5 () in
  (* locations bound by step 1 *)
  Alcotest.(check bool) "purkinje bound" true
    (List.mem "purkinje_cell" o.Section5.locations);
  (* step 2 picks exactly NCMIR ("in our case, only NCMIR is returned") *)
  Alcotest.(check bool) "NCMIR contacted" true
    (List.mem "NCMIR" o.Section5.sources_contacted);
  Alcotest.(check bool) "SYNAPSE not contacted" false
    (List.mem "SYNAPSE" o.Section5.sources_contacted);
  (* step 3: exactly the calcium binders *)
  Alcotest.(check (list string)) "calcium binders"
    (List.sort String.compare Neuro.Sources.calcium_binders)
    o.Section5.proteins;
  (* step 4: a root exists and distributions are non-empty *)
  Alcotest.(check bool) "root found" true (o.Section5.root <> None);
  Alcotest.(check int) "one distribution per protein"
    (List.length o.Section5.proteins)
    (List.length o.Section5.distributions);
  List.iter
    (fun (_, tree) ->
      Alcotest.(check bool) "distribution has mass" true
        (tree.Aggregate.total > 0.0))
    o.Section5.distributions

let test_section5_distribution_consistency () =
  let _, o = run_q5 () in
  (* the tree total equals the sum of own masses of its nodes *)
  List.iter
    (fun (_, tree) ->
      let rec own_sum t =
        t.Aggregate.own +. List.fold_left (fun a c -> a +. own_sum c) 0.0 t.Aggregate.children
      in
      Alcotest.(check (float 1e-6)) "rollup" (own_sum tree) tree.Aggregate.total)
    o.Section5.distributions

let test_section5_ablation_index () =
  let _, with_index = run_q5 () in
  let _, without =
    run_q5
      ~config:{ Mediator.default_config with Mediator.use_semantic_index = false }
      ()
  in
  Alcotest.(check (list string)) "same proteins"
    with_index.Section5.proteins without.Section5.proteins;
  Alcotest.(check bool) "broadcast contacts more sources" true
    (List.length without.Section5.sources_contacted
    > List.length with_index.Section5.sources_contacted)

let test_section5_ablation_pushdown () =
  let _, pushed = run_q5 () in
  let _, scanned =
    run_q5 ~config:{ Mediator.default_config with Mediator.pushdown = false } ()
  in
  Alcotest.(check (list string)) "same proteins"
    pushed.Section5.proteins scanned.Section5.proteins;
  Alcotest.(check bool)
    (Printf.sprintf "pushdown ships fewer tuples (%d < %d)"
       pushed.Section5.tuples_moved scanned.Section5.tuples_moved)
    true
    (pushed.Section5.tuples_moved < scanned.Section5.tuples_moved)

let test_section5_ablation_lub () =
  let _, with_lub = run_q5 () in
  let _, without =
    run_q5 ~config:{ Mediator.default_config with Mediator.use_lub = false } ()
  in
  let tree_size o =
    List.fold_left (fun a (_, t) -> a + Aggregate.size t) 0 o.Section5.distributions
  in
  Alcotest.(check bool) "lub gives a tighter region" true
    (tree_size with_lub <= tree_size without);
  (* same total mass regardless of root *)
  let mass o =
    List.fold_left (fun a (_, t) -> a +. t.Aggregate.total) 0.0 o.Section5.distributions
  in
  Alcotest.(check (float 1e-6)) "mass preserved" (mass with_lub) (mass without)

let test_section5_no_data () =
  let med = fresh_mediator () in
  match
    Section5.calcium_binding_query med ~organism:"axolotl"
      ~transmitting_compartment:"parallel_fiber" ~ion:"calcium" ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure for unknown organism"

let test_example4_distribution () =
  let med = fresh_mediator () in
  match
    Section5.protein_distribution med ~protein:"ryanodine_receptor"
      ~organism:"rat" ~root:"cerebellum"
  with
  | Error e -> Alcotest.failf "example 4 failed: %s" e
  | Ok tree ->
    Alcotest.(check string) "rooted at cerebellum" "cerebellum"
      tree.Aggregate.concept;
    Alcotest.(check bool) "mass present" true (tree.Aggregate.total > 0.0);
    (* purkinje data contributes below the root *)
    let flat = Aggregate.flatten tree in
    Alcotest.(check bool) "purkinje in distribution" true
      (List.mem_assoc "purkinje_cell" flat)

(* -------------------------------------------------------------------- *)
(* Baseline comparison *)

let test_baseline_agrees_and_costs_more () =
  let med = fresh_mediator () in
  let model =
    match
      Section5.calcium_binding_query med ~organism:"rat"
        ~transmitting_compartment:"parallel_fiber" ~ion:"calcium" ()
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "model-based failed: %s" e
  in
  let structural =
    match
      Baseline.calcium_binding_query med ~organism:"rat"
        ~transmitting_compartment:"parallel_fiber" ~ion:"calcium" ()
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "baseline failed: %s" e
  in
  Alcotest.(check (list string)) "same proteins"
    model.Section5.proteins structural.Baseline.proteins;
  Alcotest.(check bool) "baseline contacts every source" true
    (List.length structural.Baseline.sources_contacted
    > List.length model.Section5.sources_contacted);
  Alcotest.(check bool)
    (Printf.sprintf "baseline ships more tuples (%d > %d)"
       structural.Baseline.tuples_moved model.Section5.tuples_moved)
    true
    (structural.Baseline.tuples_moved > model.Section5.tuples_moved);
  (* per-location sums agree with the model-based distribution's own
     masses at those locations *)
  match model.Section5.distributions with
  | (p0, tree) :: _ ->
    let flat_own =
      let rec go t acc = List.fold_left (fun acc c -> go c acc) ((t.Aggregate.concept, t.Aggregate.own) :: acc) t.Aggregate.children in
      go tree []
    in
    List.iter
      (fun (loc, own) ->
        if own > 0.0 then begin
          let base_sum =
            List.fold_left
              (fun a (p, l, amt) ->
                if p = p0 && l = loc then a +. amt else a)
              0.0 structural.Baseline.rows
          in
          Alcotest.(check (float 1e-6)) ("agree at " ^ loc) own base_sum
        end)
      flat_own
  | [] -> Alcotest.fail "no distributions"

let test_consistency_check () =
  let med = fresh_mediator () in
  (* assertion-mode mediated base should carry no IC witnesses *)
  Alcotest.(check bool) "mediated base consistent" true (Mediator.consistent med)

(* -------------------------------------------------------------------- *)
(* Incremental maintenance + result cache (Figure 3's update arrow) *)

let test_incremental_updates () =
  (* IC mode with inheritance off keeps the mediated program stratified,
     so updates flow through Maintain instead of invalidating *)
  let config =
    {
      Mediator.default_config with
      Mediator.dl_mode = Dl.Translate.Ic;
      inheritance = false;
    }
  in
  let med = fresh_mediator ~config () in
  let q = "X : spine, X[diameter ->> D], D > 0.6" in
  let ask () =
    match Mediator.query_text med q with
    | Ok answers -> List.length answers
    | Error e -> Alcotest.fail e
  in
  let n0 = ask () in
  Alcotest.(check int) "cached repeat agrees" n0 (ask ());
  let st = Mediator.cache_stats med in
  Alcotest.(check int) "one hit" 1 st.Mediator.hits;
  Alcotest.(check int) "one miss" 1 st.Mediator.misses;
  Alcotest.(check int) "one rebuild" 1 st.Mediator.rebuilt;
  let obs =
    [
      Molecule.Isa (s "live_1", s "spine_measure");
      Molecule.Meth_val (s "live_1", "diameter", Logic.Term.float 0.9);
      Molecule.Meth_val (s "live_1", "location", s "pyramidal_cell");
      Molecule.Meth_val (s "live_1", "species", Logic.Term.str "rat");
    ]
  in
  (match Mediator.update_source med ~source:"SYNAPSE" ~additions:obs () with
  | Ok (Some rep) ->
    Alcotest.(check bool) "facts added" true (rep.Datalog.Maintain.added > 0);
    Alcotest.(check bool) "touched predicates recorded" true
      (rep.Datalog.Maintain.touched <> [])
  | Ok None -> Alcotest.fail "update did not go through maintenance"
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "new observation visible" (n0 + 1) (ask ());
  (match Mediator.last_maintenance med with
  | None -> Alcotest.fail "no maintenance report"
  | Some r -> Alcotest.(check bool) "strata walked" true (r.Datalog.Maintain.strata > 0));
  (* retract the same observation: the DRed path restores the old state *)
  (match Mediator.update_source med ~source:"SYNAPSE" ~deletions:obs () with
  | Ok (Some rep) ->
    Alcotest.(check bool) "facts removed" true (rep.Datalog.Maintain.removed > 0)
  | Ok None -> Alcotest.fail "deletion did not go through maintenance"
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "retraction restores answers" n0 (ask ());
  let st' = Mediator.cache_stats med in
  Alcotest.(check int) "still a single full rebuild" 1 st'.Mediator.rebuilt;
  Alcotest.(check bool) "two incremental passes" true (st'.Mediator.maintained >= 2);
  (* unknown sources are rejected without touching anything *)
  match Mediator.update_source med ~source:"NOWHERE" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown source accepted"

let suites =
  [
    ( "mediator.namespace",
      [ Alcotest.test_case "qualification" `Quick test_namespace ] );
    ( "mediator.registration",
      [
        Alcotest.test_case "register sources" `Quick test_registration;
        Alcotest.test_case "conceptual lifting" `Quick test_lifting;
        Alcotest.test_case "text queries" `Quick test_query_text;
        Alcotest.test_case "IVDs" `Quick test_ivd;
        Alcotest.test_case "extend domain map" `Quick test_extend_dmap;
        Alcotest.test_case "register via XML" `Quick test_register_via_xml;
        Alcotest.test_case "consistency" `Quick test_consistency_check;
        Alcotest.test_case "incremental updates" `Quick test_incremental_updates;
      ] );
    ( "mediator.selection",
      [ Alcotest.test_case "semantic index" `Quick test_source_selection ] );
    ( "mediator.section5",
      [
        Alcotest.test_case "answers" `Quick test_section5_answers;
        Alcotest.test_case "distribution rollup" `Quick test_section5_distribution_consistency;
        Alcotest.test_case "ablation: index" `Quick test_section5_ablation_index;
        Alcotest.test_case "ablation: pushdown" `Quick test_section5_ablation_pushdown;
        Alcotest.test_case "ablation: lub" `Quick test_section5_ablation_lub;
        Alcotest.test_case "no data" `Quick test_section5_no_data;
        Alcotest.test_case "example 4" `Quick test_example4_distribution;
      ] );
    ( "mediator.baseline",
      [
        Alcotest.test_case "agreement and cost" `Quick
          test_baseline_agrees_and_costs_more;
      ] );
  ]
