(* Differential testing of the evaluation strategies: on randomly
   generated safe stratified programs with random EDBs, every engine
   must compute the same model —

     Naive == Seminaive == Maintain.init,

   and incremental maintenance must be invisible:

     init + apply(delta)            == materialize(updated EDB)
     one-fact-at-a-time deltas      == one batch delta
     init(half) + extend_rules(rest) == init(whole program)

   with a top-down (tabled) spot-check against the materialized model
   on the supported fragment. Deltas deliberately include facts on
   rule-defined predicates (base assertion / base retraction — the
   mediator's update path) and deletions of absent facts, so the
   agreement also pins the documented retract-and-rederive semantics.

   The run is deterministic: case [i] uses seed [base*10_000 + i] where
   [base] comes from KIND_DIFF_SEED (default 0), so a failure report
   ("seed N: ...") reproduces by running the suite with the same
   environment. KIND_DIFF_CASES overrides the case count. *)

open Logic
module Engine = Datalog.Engine
module Maintain = Datalog.Maintain
module Database = Datalog.Database
module Program = Datalog.Program
module Topdown = Datalog.Topdown
module Tuple = Datalog.Tuple

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

let cases = max 200 (env_int "KIND_DIFF_CASES" 220)
let base_seed = env_int "KIND_DIFF_SEED" 0

(* ------------------------------------------------------------------ *)
(* Program / EDB / delta generator                                     *)

let edb_preds = [ ("e0", 2); ("e1", 2); ("e2", 1) ]

let const st = Term.sym (Printf.sprintf "k%d" (Random.State.int st 6))

let pick st xs = List.nth xs (Random.State.int st (List.length xs))

let ground_atom st (name, arity) =
  Atom.make name (List.init arity (fun _ -> const st))

(* Rules for [p_i] may read EDB predicates and [p_0..p_i] positively
   (so same-layer recursion happens) and EDB predicates and strictly
   lower [p_j] under negation or aggregation — stratified by
   construction. Safety by construction too: head and negated-literal
   variables are drawn from the variables of the positive body
   literals (plus an aggregate's result variable). *)
let gen_rules st =
  let var_pool = [ "A"; "B"; "C"; "D" ] in
  let nidb = 4 + Random.State.int st 3 in
  let idb =
    List.init nidb (fun i ->
        (Printf.sprintf "p%d" i, 1 + Random.State.int st 2))
  in
  let rule_for i (h, ha) =
    let pos_pool = edb_preds @ List.filteri (fun j _ -> j <= i) idb in
    let neg_pool = edb_preds @ List.filteri (fun j _ -> j < i) idb in
    let positives =
      List.init
        (1 + Random.State.int st 2)
        (fun _ ->
          let name, ar = pick st pos_pool in
          Atom.make name
            (List.init ar (fun _ ->
                 if Random.State.int st 100 < 20 then const st
                 else Term.var (pick st var_pool))))
    in
    (* Sometimes a count aggregate over a strictly-lower predicate:
       [N = count{GA [GB]; q(GA,GB)}]. The result variable feeds the
       head / negation pool; a grouped aggregate yields one binding of
       N per group value, an ungrouped one a single total. Aggregates
       also exercise the compiled path's non-streaming plan shape. *)
    let aggregates =
      if Random.State.int st 100 < 25 then
        let name, ar = pick st neg_pool in
        let grouped = ar >= 2 && Random.State.int st 2 = 0 in
        let args =
          List.init ar (fun k ->
              if k = 0 then Term.var "GA"
              else if k = 1 && grouped then Term.var "GB"
              else if Random.State.int st 100 < 30 then const st
              else Term.var (Printf.sprintf "G%d" k))
        in
        [
          Literal.count ~target:(Term.var "GA")
            ~group_by:(if grouped then [ Term.var "GB" ] else [])
            ~result:(Term.var "N")
            [ Atom.make name args ];
        ]
      else []
    in
    let pv =
      List.sort_uniq compare
        (List.concat_map Atom.vars positives
        @ if aggregates <> [] then [ "N" ] else [])
    in
    let bound_or_const () =
      if pv <> [] && Random.State.int st 100 < 80 then
        Term.var (pick st pv)
      else const st
    in
    let negatives =
      if Random.State.int st 100 < 40 then
        let name, ar = pick st neg_pool in
        [ Literal.neg name (List.init ar (fun _ -> bound_or_const ())) ]
      else []
    in
    Rule.make
      (Atom.make h (List.init ha (fun _ -> bound_or_const ())))
      (List.map (fun (a : Atom.t) -> Literal.pos a.Atom.pred a.Atom.args)
         positives
      @ negatives @ aggregates)
  in
  let rules =
    List.concat
      (List.mapi
         (fun i p ->
           List.init (1 + Random.State.int st 2) (fun _ -> rule_for i p))
         idb)
  in
  (rules, idb)

let gen_edb st =
  List.concat_map
    (fun p -> List.init (6 + Random.State.int st 10) (fun _ -> ground_atom st p))
    edb_preds

(* A delta mixing EDB insertions, deletions of existing and of absent
   facts, and (sometimes) base facts on rule-defined predicates. *)
let gen_delta st ~edb_facts ~idb =
  let additions =
    List.init
      (2 + Random.State.int st 6)
      (fun _ -> ground_atom st (pick st edb_preds))
    @
    if Random.State.int st 100 < 35 then
      List.init (1 + Random.State.int st 2) (fun _ ->
          ground_atom st (pick st idb))
    else []
  in
  let deletions =
    List.filter (fun _ -> Random.State.int st 100 < 15) edb_facts
    @ [ ground_atom st (pick st edb_preds) ]
    @
    if Random.State.int st 100 < 25 then [ ground_atom st (pick st idb) ]
    else []
  in
  Maintain.delta ~additions ~deletions ()

(* ------------------------------------------------------------------ *)
(* Checks                                                              *)

let facts_str db =
  List.sort compare (List.map Atom.to_string (Database.all_facts db))

let check_same ctx a b =
  Alcotest.(check (list string)) ctx (facts_str a) (facts_str b)

let naive_config = { Engine.default_config with strategy = Engine.Naive }

let interpreted_config =
  { Engine.default_config with Engine.compiled_plans = false }

let updated_edb edb (d : Maintain.delta) =
  let e = Database.copy edb in
  List.iter (fun f -> ignore (Database.remove_fact e f)) d.Maintain.deletions;
  List.iter (fun f -> ignore (Database.add_fact e f)) d.Maintain.additions;
  e

let run_case seed =
  let st = Random.State.make [| seed |] in
  let rules, idb = gen_rules st in
  let p = Program.make_exn rules in
  let edb_facts = gen_edb st in
  let edb = Database.of_facts edb_facts in
  let ctx what = Printf.sprintf "seed %d: %s" seed what in
  let fail_on_error what = function
    | Ok x -> x
    | Error e -> Alcotest.failf "seed %d: %s: %s" seed what e
  in
  (* strategies agree on the initial model *)
  let full = Engine.materialize p edb in
  (* counter sanity for the Atomic.t stats: two identical runs must
     report identical counters (a leaked shared counter would
     accumulate across runs), and the parallel-only counters must stay
     at their sequential values without a pool *)
  let counted () =
    let rep = ref Engine.empty_report in
    ignore (Engine.materialize ~report:rep p edb);
    !rep
  in
  let r1 = counted () and r2 = counted () in
  Alcotest.(check (list int))
    (ctx "counters deterministic across runs")
    [ r1.Engine.derived; r1.Engine.joins; r1.Engine.tuples_scanned;
      r1.Engine.index_hits; r1.Engine.rounds ]
    [ r2.Engine.derived; r2.Engine.joins; r2.Engine.tuples_scanned;
      r2.Engine.index_hits; r2.Engine.rounds ];
  if Kind.Pool.env_domains () <= 1 then begin
    Alcotest.(check int) (ctx "sequential: domains_used = 1") 1
      r1.Engine.domains_used;
    Alcotest.(check int) (ctx "sequential: parallel_batches = 0") 0
      r1.Engine.parallel_batches
  end;
  check_same (ctx "naive == seminaive")
    (Engine.materialize ~config:naive_config p edb)
    full;
  (* the compiled join kernel is a pure optimization: switching it off
     must not change the model (the interpreted path is the oracle) *)
  check_same (ctx "compiled == interpreted")
    (Engine.materialize ~config:interpreted_config p edb)
    full;
  let fresh () = fail_on_error "Maintain.init" (Maintain.init p edb) in
  let h = fresh () in
  check_same (ctx "Maintain.init == materialize") (Maintain.db h) full;
  (* a batch delta equals re-materializing the updated EDB *)
  let d = gen_delta st ~edb_facts ~idb in
  let full' = Engine.materialize p (updated_edb edb d) in
  ignore (fail_on_error "apply batch" (Maintain.apply h d));
  check_same (ctx "batch delta == re-materialize") (Maintain.db h) full';
  (* one-fact-at-a-time deltas land in the same state *)
  let h1 = fresh () in
  List.iter
    (fun f ->
      ignore
        (fail_on_error "apply single deletion"
           (Maintain.apply h1 (Maintain.delta ~deletions:[ f ] ()))))
    d.Maintain.deletions;
  List.iter
    (fun f ->
      ignore
        (fail_on_error "apply single addition"
           (Maintain.apply h1 (Maintain.delta ~additions:[ f ] ()))))
    d.Maintain.additions;
  check_same (ctx "one-by-one == batch") (Maintain.db h1) (Maintain.db h);
  (* growing the program incrementally equals starting with all of it *)
  let k = List.length rules / 2 in
  let first = List.filteri (fun i _ -> i < k) rules in
  let rest = List.filteri (fun i _ -> i >= k) rules in
  let h2 =
    fail_on_error "init on first half" (Maintain.init (Program.make_exn first) edb)
  in
  ignore (fail_on_error "extend_rules" (Maintain.extend_rules h2 rest));
  check_same (ctx "extend_rules == whole program") (Maintain.db h2) full;
  ignore (fail_on_error "apply after extend" (Maintain.apply h2 d));
  check_same (ctx "delta after extend == re-materialize") (Maintain.db h2) full';
  (* the static cardinality analysis is sound on the initial model:
     every predicate's actual extent lies in its inferred interval —
     and the analysis-guided join planner is answer-invisible *)
  let res = Analysis.Card.analyze ~edb rules in
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (a : Atom.t) ->
      Hashtbl.replace counts a.Atom.pred
        (1 + Option.value (Hashtbl.find_opt counts a.Atom.pred) ~default:0))
    (Database.all_facts full);
  Hashtbl.iter
    (fun pred n ->
      let iv = Analysis.Card.card res pred in
      if not (Analysis.Card.contains iv n) then
        Alcotest.failf "seed %d: %s has %d tuples, outside inferred %s" seed
          pred n
          (Format.asprintf "%a" Analysis.Card.pp_interval iv))
    counts;
  let oracle_config =
    {
      Engine.default_config with
      Engine.cost_oracle = Some (Analysis.Card.oracle res);
    }
  in
  check_same (ctx "cost-oracle plans == greedy plans")
    (Engine.materialize ~config:oracle_config p edb)
    full;
  (* top-down spot check: tabled answers on one derived predicate *)
  try
    let name, ar = List.nth idb (seed mod List.length idb) in
    let goal =
      Atom.make name (List.init ar (fun i -> Term.var (Printf.sprintf "Q%d" i)))
    in
    let td = List.sort Tuple.compare (Topdown.solve p edb goal) in
    let bu = List.sort Tuple.compare (Engine.answers full goal) in
    let show ts =
      List.map (fun t -> String.concat "," (List.map Term.to_string t)) ts
    in
    Alcotest.(check (list string))
      (ctx "topdown == bottom-up")
      (show bu) (show td)
  with Topdown.Unsupported _ -> ()

let differential () =
  for i = 0 to cases - 1 do
    run_case ((base_seed * 10_000) + i)
  done

(* ------------------------------------------------------------------ *)
(* Regression: the well-founded fallback must fill the engine report
   (counters shared with the stratified path went missing once). *)

let wf_report () =
  let v = Term.var and s = Term.sym in
  let p =
    Program.make_exn
      [
        Rule.make
          (Atom.make "win" [ v "X" ])
          [ Literal.pos "move" [ v "X"; v "Y" ]; Literal.neg "win" [ v "Y" ] ];
      ]
  in
  let edb =
    Database.of_facts
      [ Atom.make "move" [ s "a"; s "b" ]; Atom.make "move" [ s "b"; s "c" ] ]
  in
  let rep = ref Engine.empty_report in
  let db = Engine.materialize ~report:rep p edb in
  Alcotest.(check bool) "fell back to well-founded" false !rep.Engine.stratified;
  Alcotest.(check bool) "win(b) holds" true
    (Database.mem db (Atom.make "win" [ s "b" ]));
  Alcotest.(check bool) "win(a) refuted" false
    (Database.mem db (Atom.make "win" [ s "a" ]));
  Alcotest.(check bool) "joins counted" true (!rep.Engine.joins > 0);
  Alcotest.(check bool) "tuples_scanned counted" true
    (!rep.Engine.tuples_scanned > 0);
  Alcotest.(check bool) "derived counted" true (!rep.Engine.derived >= 1);
  Alcotest.(check bool) "rounds counted" true (!rep.Engine.rounds > 0);
  (* the alternating-fixpoint fallback also runs compiled plans, so it
     too must be a pure optimization *)
  check_same "wf: compiled == interpreted"
    (Engine.materialize ~config:interpreted_config p edb)
    db

(* ------------------------------------------------------------------ *)
(* The new kernel counters: compiled runs answer joins through the
   plan cache and index probes; with the kernel switched off the plan
   cache is never consulted. *)

let kernel_counters () =
  let v = Term.var and s = Term.sym in
  let p =
    Program.make_exn
      (Rule.make
         (Atom.make "tc" [ v "X"; v "Y" ])
         [ Literal.pos "edge" [ v "X"; v "Y" ] ]
      :: Rule.make
           (Atom.make "tc" [ v "X"; v "Y" ])
           [ Literal.pos "tc" [ v "X"; v "Z" ]; Literal.pos "edge" [ v "Z"; v "Y" ] ]
      :: List.init 24 (fun k ->
             Rule.fact
               (Atom.make "edge"
                  [ s (Printf.sprintf "m%d" k); s (Printf.sprintf "m%d" (k + 1)) ])))
  in
  (* first run warms the global plan cache, second run must hit it *)
  ignore (Engine.materialize p (Database.create ()));
  let rep = ref Engine.empty_report in
  let db = Engine.materialize ~report:rep p (Database.create ()) in
  Alcotest.(check int) "full closure" (24 * 25 / 2)
    (List.length (Database.all_facts db) - 24);
  Alcotest.(check bool) "compiled: plan_cache_hits > 0" true
    (!rep.Engine.plan_cache_hits > 0);
  Alcotest.(check bool) "compiled: index_hits > 0" true
    (!rep.Engine.index_hits > 0);
  let rep_i = ref Engine.empty_report in
  ignore
    (Engine.materialize ~config:interpreted_config ~report:rep_i p
       (Database.create ()));
  Alcotest.(check int) "interpreted: plan_cache_hits = 0" 0
    !rep_i.Engine.plan_cache_hits

let suites =
  [
    ( "differential",
      [
        Alcotest.test_case
          (Printf.sprintf "%d random stratified programs agree across engines"
             cases)
          `Quick differential;
        Alcotest.test_case "well-founded fallback fills the report" `Quick
          wf_report;
        Alcotest.test_case "compiled kernel fills the plan counters" `Quick
          kernel_counters;
      ] );
  ]
