(* Crash-point recovery testing of the durability stack.

   The checkpoint/WAL code does all its I/O through a {!Codec.fs}
   record, so a process crash is simulated without killing anything:
   {!Wrapper.Crashpoint} implements the record over in-memory files
   with a tick budget and raises mid-write when it runs out. One
   fault-free run measures the total tick cost of a seeded workload
   (materialize, then a few maintenance batches); each budget then
   enumerates a distinct kill point — mid-frame, between frames,
   before/after a flush, mid-rotation — and the property is

     recover after a crash in phase k  ∈  { state(k-1), state(k) }

   i.e. recovery lands on exactly the pre-batch or the post-batch
   database, bit-identical (canonical fact-set) to the fault-free
   oracle — under BOTH post-crash models (un-fsynced bytes kept torn /
   dropped).

   The matrix is seeded like the fault matrix: case [i] uses seed
   [base*10_000 + i] with [base] from KIND_RECOVERY_SEED (default 0);
   KIND_RECOVERY_CASES (default 200) sets the case count. *)

open Logic
open Datalog
module Crashpoint = Wrapper.Crashpoint
module Mediator = Mediation.Mediator
module Runtime = Mediation.Runtime
module Molecule = Flogic.Molecule
module Source = Wrapper.Source
module Capability = Wrapper.Capability
module Fault = Wrapper.Fault

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

let cases = max 1 (env_int "KIND_RECOVERY_CASES" 200)
let base_seed = env_int "KIND_RECOVERY_SEED" 0

let v = Term.var
let s = Term.sym
let atom p args = Atom.make p args
let rule h b = Rule.make h b
let edge x y = atom "edge" [ s x; s y ]

(* tc(X,Y) :- edge(X,Y).  tc(X,Y) :- edge(X,Z), tc(Z,Y).
   edge is pure EDB and tc pure IDB, so maintenance re-adoption and
   snapshot [edb] reconstruction are exact. *)
let tc_program =
  Program.make_exn
    [
      rule (atom "tc" [ v "X"; v "Y" ]) [ Literal.pos "edge" [ v "X"; v "Y" ] ];
      rule
        (atom "tc" [ v "X"; v "Y" ])
        [ Literal.pos "edge" [ v "X"; v "Z" ]; Literal.pos "tc" [ v "Z"; v "Y" ] ];
    ]

(* canonical fact-set image: the "bit-identical" yardstick *)
let canon db =
  Database.all_facts db
  |> List.map Atom.to_string
  |> List.sort compare |> String.concat "\n"

(* ------------------------------------------------------------------ *)
(* Seeded workloads: an initial edge set plus maintenance batches      *)

type workload = {
  edb : Atom.t list;
  batches : Maintain.delta list;
  wal_max : int;  (** small on some seeds, to exercise rotation *)
}

let node st n = Printf.sprintf "n%d" (Random.State.int st n)

let gen_workload st =
  let n = 4 + Random.State.int st 5 in
  let nedges = n + Random.State.int st n in
  let gen_edge () = edge (node st n) (node st n) in
  let edb = List.init nedges (fun _ -> gen_edge ()) in
  let present = ref edb in
  let batch () =
    let adds = List.init (1 + Random.State.int st 3) (fun _ -> gen_edge ()) in
    let dels =
      if !present <> [] && Random.State.bool st then
        [ List.nth !present (Random.State.int st (List.length !present)) ]
      else []
    in
    present := adds @ List.filter (fun e -> not (List.mem e dels)) !present;
    { Maintain.additions = adds; deletions = dels }
  in
  let batches = List.init (2 + Random.State.int st 2) (fun _ -> batch ()) in
  (* every third case rotates: a WAL threshold small enough that some
     batch triggers checkpoint-and-compact, putting the rename/reset
     sequence under the kill schedule too *)
  let wal_max = if Random.State.int st 3 = 0 then 60 else 1_000_000 in
  { edb; batches; wal_max }

let config_over fs wal_max =
  {
    Engine.default_config with
    Engine.durability = Some { Engine.fs; wal_max_bytes = wal_max };
  }

(* Run the workload over [fs]; [on_phase k db] fires after phase [k]
   completes (phase 0 = initial materialization, phase j = batch j).
   Raises [Crashpoint.Crashed] out of whatever phase the budget kills. *)
let run_workload w ~fs ~on_phase =
  let config = config_over fs w.wal_max in
  let db = Engine.materialize ~config tc_program (Database.of_facts w.edb) in
  on_phase 0 db;
  List.iteri
    (fun j delta ->
      match Engine.maintain ~config tc_program db delta with
      | Ok _ -> on_phase (j + 1) db
      | Error e -> Alcotest.failf "maintain (batch %d): %s" j e)
    w.batches

(* ------------------------------------------------------------------ *)
(* The crash matrix                                                    *)

let run_case seed =
  let w = gen_workload (Random.State.make [| seed |]) in
  (* fault-free oracle: canonical state after every phase, and the
     cumulative tick cost of each phase boundary *)
  let oracle = Crashpoint.create () in
  let states = ref [] and marks = ref [] in
  run_workload w ~fs:(Crashpoint.fs oracle) ~on_phase:(fun k db ->
      states := (k, canon db) :: !states;
      marks := Crashpoint.ticks oracle :: !marks);
  let states = List.rev !states in
  let total = Crashpoint.ticks oracle in
  let nphases = List.length states in
  (* sanity: the oracle's own store recovers to the final state *)
  (match
     Engine.recover ~config:(config_over (Crashpoint.fs oracle) w.wal_max)
       tc_program
   with
  | Ok (Some db) ->
    Alcotest.(check string)
      "fault-free recovery is bit-identical to the oracle"
      (List.assoc (nphases - 1) states)
      (canon db)
  | Ok None -> Alcotest.fail "fault-free store lost its checkpoint"
  | Error e -> Alcotest.failf "fault-free recovery: %s" e);
  (* kill schedule: every phase boundary ±1, plus seeded spread *)
  let st = Random.State.make [| seed + 7 |] in
  let budgets =
    List.concat_map (fun m -> [ m - 1; m; m + 1 ]) !marks
    @ [ 0; 1; total - 1 ]
    @ List.init 6 (fun _ -> Random.State.int st (max 1 total))
    |> List.filter (fun b -> b >= 0 && b < total)
    |> List.sort_uniq compare
  in
  let state_of k = if k < 0 then None else Some (List.assoc k states) in
  List.iter
    (fun budget ->
      List.iter
        (fun mode ->
          let cp = Crashpoint.create () in
          Crashpoint.arm cp ~budget ~mode;
          let completed = ref (-1) in
          (try
             run_workload w ~fs:(Crashpoint.fs cp) ~on_phase:(fun k _ ->
                 completed := k)
           with Crashpoint.Crashed -> ());
          Crashpoint.settle cp;
          let allowed =
            [ state_of !completed; state_of (min (!completed + 1) (nphases - 1)) ]
          in
          let label verdict =
            Printf.sprintf
              "seed %d budget %d/%d mode %s: crash in phase %d recovered to %s"
              seed budget total
              (match mode with
              | Crashpoint.Keep_torn -> "keep-torn"
              | Crashpoint.Drop_unsynced -> "drop-unsynced")
              (!completed + 1) verdict
          in
          match
            Engine.recover ~config:(config_over (Crashpoint.fs cp) w.wal_max)
              tc_program
          with
          | Error e -> Alcotest.fail (label ("error: " ^ e))
          | Ok None ->
            if not (List.mem None allowed) then
              Alcotest.fail (label "no checkpoint, but one phase had committed")
          | Ok (Some db) ->
            let got = canon db in
            if not (List.mem (Some got) allowed) then
              Alcotest.fail
                (label "a state that is neither pre- nor post-crash-phase");
            (* double crash: a batch acknowledged AFTER recovery must
               survive a second recovery — regression for appends
               stranded behind a torn tail, and for a stale log paired
               with a newer checkpoint *)
            let config = config_over (Crashpoint.fs cp) w.wal_max in
            (match
               Engine.maintain ~config tc_program db
                 { Maintain.additions = [ edge "zz" "n0" ]; deletions = [] }
             with
            | Error e -> Alcotest.fail (label ("post-recovery maintain: " ^ e))
            | Ok _ -> ());
            let after = canon db in
            (match Engine.recover ~config tc_program with
            | Ok (Some db2) ->
              Alcotest.(check string)
                (label "second recovery keeps the post-recovery batch")
                after (canon db2)
            | Ok None -> Alcotest.fail (label "checkpoint vanished")
            | Error e -> Alcotest.fail (label ("second recovery: " ^ e))))
        [ Crashpoint.Keep_torn; Crashpoint.Drop_unsynced ])
    budgets

let test_crash_matrix () =
  for i = 0 to cases - 1 do
    run_case ((base_seed * 10_000) + i)
  done

(* ------------------------------------------------------------------ *)
(* Snapshot: roundtrip and torn-image totality                         *)

let some_db st =
  let facts =
    List.init
      (3 + Random.State.int st 20)
      (fun i ->
        match Random.State.int st 4 with
        | 0 -> edge (node st 6) (node st 6)
        | 1 -> atom "m" [ s "o"; Term.float (float_of_int i /. 3.0) ]
        | 2 -> atom "tag" [ Term.str (Printf.sprintf "t%d\n\"" i) ]
        | _ ->
          (* nested ground app terms, as skolemized assertions make *)
          atom "sk" [ Term.app "f" [ Term.app "g" [ s (node st 6) ]; Term.int i ] ])
  in
  Database.of_facts facts

let test_snapshot_roundtrip () =
  let st = Random.State.make [| base_seed |] in
  for _ = 1 to 30 do
    let db = some_db st and edb = some_db st in
    let snap = { Snapshot.db; edb; counters = [ ("rounds", 3.0) ] } in
    match Snapshot.decode (Snapshot.encode snap) with
    | Error e -> Alcotest.failf "decode (encode snap): %s" e
    | Ok snap' ->
      Alcotest.(check bool) "restore (checkpoint db) == db" true
        (Database.equal db snap'.Snapshot.db);
      Alcotest.(check bool) "edb roundtrips" true
        (Database.equal edb snap'.Snapshot.edb);
      Alcotest.(check (list (pair string (float 0.0))))
        "counters roundtrip"
        [ ("rounds", 3.0) ]
        snap'.Snapshot.counters
  done

let test_snapshot_truncation_total () =
  let st = Random.State.make [| base_seed + 1 |] in
  let img =
    Snapshot.encode { Snapshot.db = some_db st; edb = some_db st; counters = [] }
  in
  let n = String.length img in
  for l = 0 to n - 1 do
    match Snapshot.decode (String.sub img 0 l) with
    | Error _ -> () (* an incomplete checkpoint is invalid as a whole *)
    | Ok _ -> Alcotest.failf "truncation at %d/%d decoded" l n
  done;
  (* corruption anywhere must be caught by the frame checksums *)
  for _ = 1 to 50 do
    let i = Random.State.int st n in
    let b = Bytes.of_string img in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5b));
    match Snapshot.decode (Bytes.to_string b) with
    | Error _ -> ()
    | Ok snap' ->
      (* a flip in padding-free encodings must still yield the same
         database if it decodes at all (e.g. flipping a bit of a float
         payload is caught by the CRC, so this branch means the flip
         was in a bit the decoder ignores — there are none) *)
      ignore snap';
      Alcotest.failf "bit flip at %d went unnoticed" i
  done

(* ------------------------------------------------------------------ *)
(* WAL: roundtrip, torn tails at every byte                            *)

let entries_equal (a : Wal.entry) (b : Wal.entry) =
  a.Wal.additions = b.Wal.additions && a.Wal.deletions = b.Wal.deletions

let test_wal_roundtrip_and_torn () =
  let cp = Crashpoint.create () in
  let fs = Crashpoint.fs cp in
  let entries =
    [
      { Wal.additions = [ edge "a" "b"; edge "b" "c" ]; deletions = [] };
      { Wal.additions = []; deletions = [ edge "a" "b" ] };
      { Wal.additions = [ atom "m" [ s "o"; Term.float 1.5 ] ];
        deletions = [ edge "b" "c" ];
      };
    ]
  in
  let w = Wal.open_log fs ~path:"wal.kind" in
  List.iter (Wal.append w) entries;
  Wal.close w;
  Crashpoint.settle cp;
  let img =
    match (Crashpoint.fs cp).Codec.read "wal.kind" with
    | Some img -> img
    | None -> Alcotest.fail "log vanished"
  in
  (match Wal.replay fs ~path:"wal.kind" with
  | Ok (_, got, Codec.Clean) ->
    Alcotest.(check int) "all entries back" (List.length entries)
      (List.length got);
    List.iter2
      (fun a b -> Alcotest.(check bool) "entry roundtrips" true (entries_equal a b))
      entries got
  | Ok (_, _, Codec.Torn _) -> Alcotest.fail "clean log read as torn"
  | Error e -> Alcotest.fail e);
  (* every truncation point: replay never raises, never invents an
     entry, and keeps every complete prefix entry *)
  let header = String.length (Codec.file_header ~magic:Wal.magic) in
  for l = 0 to String.length img - 1 do
    let tcp = Crashpoint.create () in
    let sink = (Crashpoint.fs tcp).Codec.sink ~append:false "wal.kind" in
    sink.Codec.write (String.sub img 0 l);
    sink.Codec.flush ();
    sink.Codec.close ();
    match Wal.replay (Crashpoint.fs tcp) ~path:"wal.kind" with
    | Ok (_, got, tail) ->
      let n = List.length got in
      Alcotest.(check bool)
        (Printf.sprintf "prefix at %d: %d entries, monotone" l n)
        true
        (n <= List.length entries
        && List.for_all2 entries_equal got
             (List.filteri (fun i _ -> i < n) entries));
      if l < String.length img && l > header then
        Alcotest.(check bool)
          (Printf.sprintf "tail at %d is torn" l)
          true
          (match tail with Codec.Torn _ -> true | Codec.Clean -> n < 3)
    | Error e ->
      (* only the header itself is load-bearing *)
      if l >= header then Alcotest.failf "replay at %d: %s" l e
  done

(* Double-crash regression: a crash mid-append leaves a torn tail;
   open_log must repair it (atomic rewrite to the last frame boundary)
   before appending, or every acknowledged post-recovery batch would
   sit unreachable behind the tear on the NEXT recovery. *)
let test_wal_torn_tail_then_append () =
  let e1 = { Wal.additions = [ edge "a" "b" ]; deletions = [] } in
  let e2 = { Wal.additions = [ edge "b" "c" ]; deletions = [] } in
  let e3 = { Wal.additions = [ edge "c" "d" ]; deletions = [ edge "a" "b" ] } in
  let cp = Crashpoint.create () in
  let fs = Crashpoint.fs cp in
  let w = Wal.open_log fs ~path:"wal.kind" in
  Wal.append w e1;
  Wal.append w e2;
  Wal.close w;
  Crashpoint.settle cp;
  let img =
    match fs.Codec.read "wal.kind" with
    | Some img -> img
    | None -> Alcotest.fail "log vanished"
  in
  (* tear e2's frame: what a crash mid-append leaves on disk *)
  let sink = fs.Codec.sink ~append:false "wal.kind" in
  sink.Codec.write (String.sub img 0 (String.length img - 3));
  sink.Codec.flush ();
  sink.Codec.close ();
  let w = Wal.open_log fs ~path:"wal.kind" in
  Wal.append w e3;
  Wal.close w;
  Crashpoint.settle cp;
  match Wal.replay fs ~path:"wal.kind" with
  | Error e -> Alcotest.fail e
  | Ok (_, got, tail) ->
    Alcotest.(check bool) "post-repair log reads clean" true
      (tail = Codec.Clean);
    Alcotest.(check int) "torn entry dropped, appended entry kept" 2
      (List.length got);
    Alcotest.(check bool) "surviving prefix + new entry" true
      (entries_equal (List.nth got 0) e1 && entries_equal (List.nth got 1) e3)

(* Generation pairing: a crash between materialize's checkpoint write
   and its WAL reset must not replay the previous incarnation's log
   over the fresh materialization. *)
let test_engine_recover_stale_wal () =
  let cp = Crashpoint.create () in
  let fs = Crashpoint.fs cp in
  let config = config_over fs 1_000_000 in
  let db =
    Engine.materialize ~config tc_program (Database.of_facts [ edge "a" "b" ])
  in
  (match
     Engine.maintain ~config tc_program db
       { Maintain.additions = [ edge "b" "c" ]; deletions = [] }
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* second materialization from a different base, crashed between
     Snapshot.write and Wal.reset: exactly the on-disk state such a
     crash leaves — a bumped-generation checkpoint over the old WAL *)
  let edb2 = Database.of_facts [ edge "x" "y" ] in
  let fresh = Engine.materialize tc_program edb2 in
  let gen = Wal.generation fs ~path:Engine.wal_file + 1 in
  ignore
    (Snapshot.write fs ~path:Engine.checkpoint_file
       {
         Snapshot.db = Database.copy fresh;
         edb = edb2;
         counters = [ ("generation", float_of_int gen) ];
       });
  (match Engine.recover ~config tc_program with
  | Ok (Some db') ->
    Alcotest.(check string)
      "stale WAL ignored: recovery is the fresh materialization"
      (canon fresh) (canon db')
  | Ok None -> Alcotest.fail "checkpoint lost"
  | Error e -> Alcotest.fail e);
  (* recovery repaired the pairing: the log is stamped with the
     checkpoint's generation and holds no stale entries *)
  match Wal.replay fs ~path:Engine.wal_file with
  | Ok (g, [], _) -> Alcotest.(check int) "log re-stamped" gen g
  | Ok (_, _ :: _, _) -> Alcotest.fail "stale entries survived recovery"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Engine.recover: directed                                            *)

let test_engine_recover_directed () =
  let cp = Crashpoint.create () in
  let config = config_over (Crashpoint.fs cp) 1_000_000 in
  (* cold start: no checkpoint yet *)
  (match Engine.recover ~config tc_program with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "recovered from an empty store"
  | Error e -> Alcotest.fail e);
  let db =
    Engine.materialize ~config tc_program
      (Database.of_facts [ edge "a" "b"; edge "b" "c" ])
  in
  List.iter
    (fun delta ->
      match Engine.maintain ~config tc_program db delta with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    [
      { Maintain.additions = [ edge "c" "d" ]; deletions = [] };
      { Maintain.additions = []; deletions = [ edge "a" "b" ] };
    ];
  let report = ref Engine.empty_report in
  (match Engine.recover ~config ~report tc_program with
  | Ok (Some db') ->
    Alcotest.(check string) "checkpoint + WAL replay = live database"
      (canon db) (canon db')
  | Ok None -> Alcotest.fail "no checkpoint after materialize"
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "wal_bytes counted" true (!report.Engine.wal_bytes > 0);
  Alcotest.(check bool) "recovery_ms filled" true
    (!report.Engine.recovery_ms >= 0.0);
  (* no durability configured: recover must refuse, not guess.
     KIND_DURABLE_DIR may be legitimately set for the whole run (the CI
     durability pass) — then the env fallback applies instead. *)
  match Sys.getenv_opt "KIND_DURABLE_DIR" with
  | Some _ -> ()
  | None -> (
    match Engine.recover tc_program with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "recover without durability configured")

let test_engine_recover_rotation () =
  let cp = Crashpoint.create () in
  let config = config_over (Crashpoint.fs cp) 40 (* rotate almost every batch *) in
  let db =
    Engine.materialize ~config tc_program (Database.of_facts [ edge "a" "b" ])
  in
  let report = ref Engine.empty_report in
  for i = 0 to 9 do
    let delta =
      { Maintain.additions = [ edge (Printf.sprintf "n%d" i) "a" ]; deletions = [] }
    in
    match Engine.maintain ~config ~report tc_program db delta with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  (* rotation happened: the log was compacted back below the threshold *)
  Alcotest.(check bool) "log compacted by rotation" true
    ((Crashpoint.fs cp).Codec.size Engine.wal_file
    < (Crashpoint.fs cp).Codec.size Engine.checkpoint_file);
  Alcotest.(check bool) "rotation cost accounted" true
    (!report.Engine.checkpoint_ms >= 0.0);
  match Engine.recover ~config tc_program with
  | Ok (Some db') ->
    Alcotest.(check string) "recovery across rotations" (canon db) (canon db')
  | Ok None -> Alcotest.fail "checkpoint lost in rotation"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Mediator: checkpoint / recover, federation state resumes            *)

let tiny_dmap () =
  let open Domain_map.Dmap in
  List.fold_left
    (fun dm (sub, super) -> isa dm sub super)
    (add_concepts empty [ "thing"; "region"; "cell" ])
    [ ("region", "thing"); ("cell", "thing") ]

let mk_source name concept vals =
  let schema =
    Gcm.Schema.make ~name
      ~classes:[ Gcm.Schema.class_def "c" ~methods:[ ("m", "number") ] ]
      ()
  in
  let data =
    List.concat_map
      (fun (obj, x) ->
        let id = Term.sym obj in
        [ Molecule.Isa (id, Term.sym "c"); Molecule.Meth_val (id, "m", Term.float x) ])
      vals
  in
  Source.make ~name ~schema
    ~capabilities:[ Capability.scan_class "c" ]
    ~anchors:[ ("c", concept, []) ]
    ~data ()

let hot_ivd =
  [
    Molecule.rule
      (Molecule.Pred (Atom.make "hot" [ v "X" ]))
      [
        Molecule.Pos (Molecule.Isa (v "X", Term.sym "region"));
        Molecule.Pos (Molecule.Meth_val (v "X", "m", v "V"));
        Molecule.Cmp (Literal.Gt, v "V", Term.float 2.0);
      ];
  ]

let med_config fs =
  {
    Mediator.default_config with
    Mediator.dl_mode = Dl.Translate.Ic;
    inheritance = false;
    durability = Some { Engine.fs; wal_max_bytes = 1_000_000 };
  }

let build_med fs =
  let med = Mediator.create ~config:(med_config fs) (tiny_dmap ()) in
  List.iter
    (fun src ->
      match Mediator.register_source med src with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [
      mk_source "A" "region" [ ("a1", 3.0); ("a2", 1.0) ];
      mk_source "B" "region" [ ("b1", 5.0) ];
      mk_source "C" "cell" [ ("c1", 4.0) ];
    ];
  Mediator.add_ivd med hot_ivd;
  med

let hot_goal = [ Molecule.Pos (Molecule.Pred (Atom.make "hot" [ v "X" ])) ]

let answers med lits =
  Mediator.query med lits
  |> List.map (fun sb -> Format.asprintf "%a" Subst.pp sb)
  |> List.sort_uniq compare

let test_mediator_recover () =
  let cp = Crashpoint.create () in
  let fs = Crashpoint.fs cp in
  let med = build_med fs in
  let want = answers med hot_goal in
  (match
     Mediator.update_source med ~source:"A"
       ~additions:
         [
           Molecule.Isa (Term.sym "a9", Term.sym "c");
           Molecule.Meth_val (Term.sym "a9", "m", Term.float 9.0);
         ]
       ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let want_after = answers med hot_goal in
  Alcotest.(check bool) "update changed the answer" true (want <> want_after);
  (* a second mediator over the same store: same topology, fresh state *)
  let med2 = build_med fs in
  (match Mediator.recover med2 with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "no checkpoint found"
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string))
    "recovered federation answers like the live one" want_after
    (answers med2 hot_goal);
  (* the WAL entry for the update replayed through maintenance *)
  match Mediator.last_maintenance med2 with
  | Some _ -> ()
  | None -> Alcotest.fail "recovery did not go through incremental maintenance"

let test_mediator_recover_breaker () =
  let cp = Crashpoint.create () in
  let fs = Crashpoint.fs cp in
  let med = build_med fs in
  (match
     Mediator.set_fault_plan med ~source:"B"
       (Fault.Script [ { Fault.at = 1; fault = Fault.Crash } ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let degraded = answers med hot_goal in
  let h = Runtime.health (Mediator.runtime med) "B" in
  Alcotest.(check bool) "B tripped" true (h.Runtime.state = Runtime.Open);
  (* persist the degraded federation, then resurrect it elsewhere *)
  (match Mediator.checkpoint med with
  | Ok bytes -> Alcotest.(check bool) "checkpoint non-empty" true (bytes > 0)
  | Error e -> Alcotest.fail e);
  let med2 = build_med fs in
  (match Mediator.recover med2 with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "no checkpoint found"
  | Error e -> Alcotest.fail e);
  let h2 = Runtime.health (Mediator.runtime med2) "B" in
  Alcotest.(check bool) "breaker state survives recovery" true
    (h2.Runtime.state = h.Runtime.state
    && h2.Runtime.open_until = h.Runtime.open_until
    && h2.Runtime.quarantined = h.Runtime.quarantined);
  Alcotest.(check int) "trip count survives" h.Runtime.trips h2.Runtime.trips;
  Alcotest.(check int) "virtual clock survives"
    (Runtime.clock (Mediator.runtime med))
    (Runtime.clock (Mediator.runtime med2));
  Alcotest.(check int) "degraded-query ledger survives"
    (Mediator.degraded_queries med)
    (Mediator.degraded_queries med2);
  Alcotest.(check (list string))
    "recovered federation degrades identically" degraded
    (answers med2 hot_goal);
  (* recovery resumes half-open probing: once the open period lapses on
     the restored clock, the next fetch probes the source again instead
     of failing fast forever *)
  let rt2 = Runtime.clock (Mediator.runtime med2) in
  Runtime.advance (Mediator.runtime med2) (max 1 (h2.Runtime.open_until - rt2));
  ignore (Mediator.query med2 hot_goal);
  let h2' = Runtime.health (Mediator.runtime med2) "B" in
  Alcotest.(check bool) "half-open probe attempted after the open period" true
    (h2'.Runtime.calls > h2.Runtime.calls || h2'.Runtime.quarantined)

let suites =
  [
    ( Printf.sprintf "recovery [seed %d, %d cases]" base_seed cases,
      [
        Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
        Alcotest.test_case "snapshot truncation/corruption totality" `Quick
          test_snapshot_truncation_total;
        Alcotest.test_case "wal roundtrip + torn tails" `Quick
          test_wal_roundtrip_and_torn;
        Alcotest.test_case "wal torn tail repaired before append" `Quick
          test_wal_torn_tail_then_append;
        Alcotest.test_case "stale WAL discarded by generation pairing" `Quick
          test_engine_recover_stale_wal;
        Alcotest.test_case "engine recover (directed)" `Quick
          test_engine_recover_directed;
        Alcotest.test_case "engine recover across rotation" `Quick
          test_engine_recover_rotation;
        Alcotest.test_case "mediator checkpoint/recover" `Quick
          test_mediator_recover;
        Alcotest.test_case "mediator recovery resumes breakers" `Quick
          test_mediator_recover_breaker;
        Alcotest.test_case "crash matrix" `Slow test_crash_matrix;
      ] );
  ]
