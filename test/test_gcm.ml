(* Tests for the GCM layer: Table 1 round-trip, schemas, and the
   constraint library of Examples 2 and 3. *)

open Logic
open Flogic

let v = Term.var
let s = Term.sym

let run_with ?signature rules =
  Fl_program.run (Fl_program.make ?signature rules)

(* -------------------------------------------------------------------- *)
(* Decl: Table 1 round trip *)

let sample_decls =
  [
    Gcm.Decl.Instance (s "p1", s "purkinje");
    Gcm.Decl.Subclass (s "purkinje", s "neuron");
    Gcm.Decl.Method (s "neuron", "soma_size", s "number");
    Gcm.Decl.Method_inst (s "p1", "soma_size", Term.int 17);
    Gcm.Decl.Relation ("has", [ ("whole", s "neuron"); ("part", s "compartment") ]);
    Gcm.Decl.Relation_inst ("has", [ ("whole", s "p1"); ("part", s "a1") ]);
  ]

let test_decl_roundtrip () =
  List.iter
    (fun d ->
      match Gcm.Decl.of_molecule (Gcm.Decl.to_molecule d) with
      | Some d' when d = d' -> ()
      | Some _ -> Alcotest.failf "round trip changed %s" (Gcm.Decl.to_string d)
      | None -> Alcotest.failf "round trip lost %s" (Gcm.Decl.to_string d))
    sample_decls

let test_decl_pred_not_core () =
  Alcotest.(check bool) "Pred has no GCM reading" true
    (Gcm.Decl.of_molecule (Molecule.pred "p" [ s "a" ]) = None)

let test_decl_signature () =
  let sg = Gcm.Decl.signature_of sample_decls in
  Alcotest.(check (option (list string))) "layout harvested"
    (Some [ "whole"; "part" ])
    (Signature.attributes sg "has")

(* QCheck: random decls survive the round trip. *)
let prop_decl_roundtrip =
  let gen =
    let open QCheck.Gen in
    let name = oneofl [ "a"; "b"; "c"; "rel1"; "rel2" ] in
    let term = oneof [ map Term.sym name; map Term.int (int_bound 100) ] in
    oneof
      [
        map2 (fun x c -> Gcm.Decl.Instance (x, c)) term term;
        map2 (fun x c -> Gcm.Decl.Subclass (x, c)) term term;
        map3 (fun c m d -> Gcm.Decl.Method (c, m, d)) term name term;
        map3 (fun x m y -> Gcm.Decl.Method_inst (x, m, y)) term name term;
        map2
          (fun r n ->
            Gcm.Decl.Relation
              (r, List.init (1 + n) (fun k -> (Printf.sprintf "a%d" k, s "c"))))
          name (int_bound 3);
        map2
          (fun r n ->
            Gcm.Decl.Relation_inst
              (r, List.init (1 + n) (fun k -> (Printf.sprintf "a%d" k, Term.int k))))
          name (int_bound 3);
      ]
  in
  QCheck.Test.make ~name:"GCM decl <-> FL molecule round trip" ~count:300
    (QCheck.make ~print:Gcm.Decl.to_string gen)
    (fun d -> Gcm.Decl.of_molecule (Gcm.Decl.to_molecule d) = Some d)

(* -------------------------------------------------------------------- *)
(* Schema *)

let neuro_schema =
  Gcm.Schema.make ~name:"SYNAPSE"
    ~classes:
      [
        Gcm.Schema.class_def "neuron" ~methods:[ ("organism", "string") ];
        Gcm.Schema.class_def "spine" ~supers:[ "compartment" ]
          ~methods:[ ("diameter", "number") ];
        Gcm.Schema.class_def "compartment";
      ]
    ~relations:[ ("has", [ ("whole", "neuron"); ("part", "compartment") ]) ]
    ()

let test_schema_validate () =
  Alcotest.(check bool) "valid schema" true
    (Gcm.Schema.validate neuro_schema = Ok ());
  let dup =
    Gcm.Schema.make ~name:"bad"
      ~classes:[ Gcm.Schema.class_def "c"; Gcm.Schema.class_def "c" ]
      ()
  in
  (match Gcm.Schema.validate dup with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate class accepted");
  let reserved =
    Gcm.Schema.make ~name:"bad" ~relations:[ ("isa", [ ("x", "c") ]) ] ()
  in
  match Gcm.Schema.validate reserved with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "reserved relation accepted"

let test_schema_to_program () =
  let t = Gcm.Schema.to_fl_program neuro_schema in
  let db = Fl_program.run t in
  Alcotest.(check bool) "spine subclass registered" true
    (Fl_program.holds t db (Molecule.sub (s "spine") (s "compartment")));
  Alcotest.(check bool) "method inherited" true
    (Fl_program.holds t db (Molecule.meth_sig (s "spine") "diameter" (s "number")));
  Alcotest.(check bool) "class without edges registered" true
    (Fl_program.holds t db (Molecule.pred Compile.class_p [ s "compartment" ]))

(* -------------------------------------------------------------------- *)
(* Example 2: partial order constraints *)

let edge_fact r x y = Molecule.fact (Molecule.pred r [ s x; s y ])

let test_partial_order_clean () =
  (* r = reflexive-transitive closure of a <= chain: a valid partial order *)
  let facts =
    [
      edge_fact "r" "a" "a"; edge_fact "r" "b" "b"; edge_fact "r" "c" "c";
      edge_fact "r" "a" "b"; edge_fact "r" "b" "c"; edge_fact "r" "a" "c";
      Molecule.fact (Molecule.isa (s "a") (s "node"));
      Molecule.fact (Molecule.isa (s "b") (s "node"));
      Molecule.fact (Molecule.isa (s "c") (s "node"));
    ]
  in
  let db = run_with (facts @ Gcm.Constraints.partial_order ~cls:"node" ~rel:"r") in
  Alcotest.(check bool) "valid partial order accepted" true (Ic.consistent db)

let test_partial_order_violations () =
  let base =
    [
      Molecule.fact (Molecule.isa (s "a") (s "node"));
      Molecule.fact (Molecule.isa (s "b") (s "node"));
      Molecule.fact (Molecule.isa (s "c") (s "node"));
    ]
  in
  let po = Gcm.Constraints.partial_order ~cls:"node" ~rel:"r" in
  (* missing reflexivity *)
  let db1 = run_with (base @ po @ [ edge_fact "r" "a" "b" ]) in
  Alcotest.(check bool) "wrc fires" true
    (List.exists (fun w -> w.Ic.name = "wrc") (Ic.violations db1));
  (* missing transitive edge a->c *)
  let refl = [ edge_fact "r" "a" "a"; edge_fact "r" "b" "b"; edge_fact "r" "c" "c" ] in
  let db2 = run_with (base @ po @ refl @ [ edge_fact "r" "a" "b"; edge_fact "r" "b" "c" ]) in
  Alcotest.(check bool) "wtc fires" true
    (List.exists (fun w -> w.Ic.name = "wtc") (Ic.violations db2));
  (* antisymmetry violation *)
  let db3 =
    run_with (base @ po @ refl @ [ edge_fact "r" "a" "b"; edge_fact "r" "b" "a" ])
  in
  Alcotest.(check bool) "was fires" true
    (List.exists (fun w -> w.Ic.name = "was") (Ic.violations db3))

let test_subclass_partial_order_meta () =
  (* The paper's schema-reasoning instantiation: check :: itself. The
     GCM axioms close :: reflexively/transitively, so a DAG hierarchy
     is always a partial order... *)
  let rules =
    [
      Molecule.fact (Molecule.sub (s "a") (s "b"));
      Molecule.fact (Molecule.sub (s "b") (s "c"));
    ]
    @ Gcm.Constraints.subclass_partial_order
  in
  let db = run_with rules in
  Alcotest.(check bool) "DAG hierarchy is a partial order" true (Ic.consistent db);
  (* ...but a subclass cycle breaks antisymmetry. *)
  let rules_cyc =
    [
      Molecule.fact (Molecule.sub (s "a") (s "b"));
      Molecule.fact (Molecule.sub (s "b") (s "a"));
    ]
    @ Gcm.Constraints.subclass_partial_order
  in
  let db2 = run_with rules_cyc in
  Alcotest.(check bool) "cycle detected by was" true
    (List.exists (fun w -> w.Ic.name = "was") (Ic.violations db2))

(* -------------------------------------------------------------------- *)
(* Example 3: cardinality *)

let has_sg = Signature.declare "has" [ "whole"; "part" ] Signature.empty

let has_fact w p =
  Molecule.fact (Molecule.Rel_val ("has", [ ("whole", s w); ("part", s p) ]))

let test_cardinality_example3 () =
  (* "a neuron can have <= 2 axons and an axon is contained in exactly
     one neuron" *)
  let constraints =
    Gcm.Constraints.cardinality ~sg:has_sg ~rel:"has" ~counted:"whole"
      ~per:[ "part" ] ~exactly:1 ()
    @ Gcm.Constraints.cardinality ~sg:has_sg ~rel:"has" ~counted:"part"
        ~per:[ "whole" ] ~max_count:2 ()
  in
  (* valid: n1 has two axons, each axon in one neuron *)
  let ok = [ has_fact "n1" "ax1"; has_fact "n1" "ax2" ] in
  let db = run_with ~signature:has_sg (ok @ constraints) in
  Alcotest.(check bool) "valid config" true (Ic.consistent db);
  (* violation: axon shared by two neurons *)
  let shared = [ has_fact "n1" "ax1"; has_fact "n2" "ax1" ] in
  let db2 = run_with ~signature:has_sg (shared @ constraints) in
  Alcotest.(check bool) "w_card_ne fires" true
    (List.exists (fun w -> w.Ic.name = "w_card_ne") (Ic.violations db2));
  (* violation: neuron with three axons *)
  let three = [ has_fact "n1" "ax1"; has_fact "n1" "ax2"; has_fact "n1" "ax3" ] in
  let db3 = run_with ~signature:has_sg (three @ constraints) in
  Alcotest.(check bool) "w_card_hi fires" true
    (List.exists (fun w -> w.Ic.name = "w_card_hi") (Ic.violations db3))

let test_cardinality_min () =
  let constraints =
    Gcm.Constraints.cardinality ~sg:has_sg ~rel:"has" ~counted:"part"
      ~per:[ "whole" ] ~min_count:2 ()
  in
  let db = run_with ~signature:has_sg (has_fact "n1" "ax1" :: constraints) in
  Alcotest.(check bool) "w_card_lo fires" true
    (List.exists (fun w -> w.Ic.name = "w_card_lo") (Ic.violations db))

let test_cardinality_bad_attr () =
  match
    Gcm.Constraints.cardinality ~sg:has_sg ~rel:"has" ~counted:"nope" ~per:[] ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_total_participation () =
  let rules =
    [
      Molecule.fact (Molecule.isa (s "n1") (s "neuron"));
      Molecule.fact (Molecule.isa (s "n2") (s "neuron"));
      has_fact "n1" "ax1";
    ]
    @ Gcm.Constraints.total_participation ~sg:has_sg ~cls:"neuron" ~rel:"has"
        ~attr:"whole"
  in
  let db = run_with ~signature:has_sg rules in
  let ws = Ic.violations db in
  Alcotest.(check int) "one violation" 1 (List.length ws);
  match ws with
  | [ { Ic.name = "w_total"; args } ] ->
    Alcotest.(check bool) "names n2" true
      (List.exists (Term.equal (s "n2")) args)
  | _ -> Alcotest.fail "expected w_total witness"

(* -------------------------------------------------------------------- *)
(* Relational constraints *)

let test_functional_dependency () =
  let fd =
    Gcm.Constraints.functional_dependency ~sg:has_sg ~rel:"has" ~from:[ "part" ]
      ~to_:"whole"
  in
  let ok = [ has_fact "n1" "ax1"; has_fact "n1" "ax2" ] in
  Alcotest.(check bool) "fd holds" true
    (Ic.consistent (run_with ~signature:has_sg (ok @ fd)));
  let bad = [ has_fact "n1" "ax1"; has_fact "n2" "ax1" ] in
  Alcotest.(check bool) "fd violated" false
    (Ic.consistent (run_with ~signature:has_sg (bad @ fd)))

let test_inclusion () =
  let sg = Signature.declare "exp" [ "cell"; "protein" ] has_sg in
  let incl =
    Gcm.Constraints.inclusion ~sg ~from_rel:"exp" ~from_attr:"cell"
      ~to_rel:"has" ~to_attr:"whole"
  in
  let exp_fact c p =
    Molecule.fact (Molecule.Rel_val ("exp", [ ("cell", s c); ("protein", s p) ]))
  in
  let db = run_with ~signature:sg ([ has_fact "n1" "ax1"; exp_fact "n1" "ryr" ] @ incl) in
  Alcotest.(check bool) "inclusion holds" true (Ic.consistent db);
  let db2 = run_with ~signature:sg ([ has_fact "n1" "ax1"; exp_fact "n9" "ryr" ] @ incl) in
  Alcotest.(check bool) "inclusion violated" false (Ic.consistent db2)

let test_attribute_typed () =
  let typed =
    Gcm.Constraints.attribute_typed ~sg:has_sg ~rel:"has" ~attr:"whole" ~cls:"neuron"
  in
  let base = [ has_fact "n1" "ax1"; Molecule.fact (Molecule.isa (s "n1") (s "neuron")) ] in
  Alcotest.(check bool) "typed ok" true
    (Ic.consistent (run_with ~signature:has_sg (base @ typed)));
  let bad = [ has_fact "rock" "ax1" ] in
  Alcotest.(check bool) "typing violated" false
    (Ic.consistent (run_with ~signature:has_sg (bad @ typed)))

let suites =
  [
    ( "gcm.decl",
      [
        Alcotest.test_case "Table 1 round trip" `Quick test_decl_roundtrip;
        Alcotest.test_case "pred excluded" `Quick test_decl_pred_not_core;
        Alcotest.test_case "signature harvest" `Quick test_decl_signature;
        QCheck_alcotest.to_alcotest prop_decl_roundtrip;
      ] );
    ( "gcm.schema",
      [
        Alcotest.test_case "validate" `Quick test_schema_validate;
        Alcotest.test_case "to program" `Quick test_schema_to_program;
      ] );
    ( "gcm.constraints.example2",
      [
        Alcotest.test_case "clean partial order" `Quick test_partial_order_clean;
        Alcotest.test_case "violations" `Quick test_partial_order_violations;
        Alcotest.test_case "meta :: check" `Quick test_subclass_partial_order_meta;
      ] );
    ( "gcm.constraints.example3",
      [
        Alcotest.test_case "neuron/axon cardinalities" `Quick test_cardinality_example3;
        Alcotest.test_case "min bound" `Quick test_cardinality_min;
        Alcotest.test_case "bad attribute" `Quick test_cardinality_bad_attr;
        Alcotest.test_case "total participation" `Quick test_total_participation;
      ] );
    ( "gcm.constraints.relational",
      [
        Alcotest.test_case "functional dependency" `Quick test_functional_dependency;
        Alcotest.test_case "inclusion" `Quick test_inclusion;
        Alcotest.test_case "attribute typing" `Quick test_attribute_typed;
      ] );
  ]
