(* Round-trip and mutation fuzzing of the XML wire codecs:

     parse (print doc) = Ok doc                    (round trip)
     parse_lenient (print doc) = Some (doc, [])    (lenient agrees, no repairs)
     parse / parse_lenient never raise on byte-mutated documents
     parse_lenient is deterministic on any input

   The generator produces trees in the printer's normal form — no
   whitespace-only text, no adjacent text children — because that is
   the fragment the compact printer round-trips by contract
   (Print.to_string doc). Seeded via KIND_QCHECK_SEED like the other
   QCheck suites. *)

module Xml = Xmlkit.Xml
module Parse = Xmlkit.Parse
module Print = Xmlkit.Print

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let name_gen = QCheck.Gen.oneofl [ "a"; "b"; "tag"; "ns:x"; "data-1"; "obj" ]

(* text with markup-significant characters; never whitespace-only *)
let text_gen =
  let open QCheck.Gen in
  let piece =
    oneofl [ "a"; "b "; " c"; "<"; ">"; "&"; "\""; "'"; "x;"; "1.5"; "&amp" ]
  in
  map
    (fun (core, pieces) -> String.concat "" (core :: pieces))
    (pair (oneofl [ "t"; "v" ]) (list_size (int_bound 4) piece))

let attr_gen =
  QCheck.Gen.(pair (oneofl [ "k"; "id"; "source"; "v-1" ]) text_gen)

(* drop whitespace-only text and merge-adjacent-text violations so the
   tree is in the printer's round-trippable normal form *)
let normalize_children kids =
  let keep (prev_text, acc) kid =
    match kid with
    | Xml.Text s when String.trim s = "" || prev_text -> (prev_text, acc)
    | Xml.Text _ -> (true, kid :: acc)
    | Xml.Element _ -> (false, kid :: acc)
  in
  List.rev (snd (List.fold_left keep (false, []) kids))

let doc_gen =
  let open QCheck.Gen in
  let node =
    fix (fun self depth ->
        let element =
          map3
            (fun tag attrs kids ->
              (* positional duplicates round-trip too, but distinct keys
                 keep shrunk counterexamples readable *)
              let attrs =
                List.sort_uniq (fun (a, _) (b, _) -> compare a b) attrs
              in
              Xml.Element (tag, attrs, normalize_children kids))
            name_gen
            (list_size (int_bound 3) attr_gen)
            (if depth = 0 then return []
             else list_size (int_bound 3) (self (depth - 1)))
        in
        if depth = 0 then element
        else frequency [ (3, element); (1, map (fun t -> Xml.Text t) text_gen) ])
  in
  (* the root is always an element *)
  map
    (function Xml.Text t -> Xml.Element ("root", [], [ Xml.Text t ]) | e -> e)
    (node 3)

let print_doc doc = Print.to_string doc

let arb_doc = QCheck.make ~print:print_doc doc_gen

(* ------------------------------------------------------------------ *)
(* Byte mutations                                                      *)

type mutation =
  | Replace of int * char
  | Insert of int * char
  | Delete of int
  | Truncate_at of int

let apply_mutation s m =
  let n = String.length s in
  if n = 0 then s
  else
    match m with
    | Replace (i, c) ->
      let b = Bytes.of_string s in
      Bytes.set b (i mod n) c;
      Bytes.to_string b
    | Insert (i, c) ->
      let i = i mod (n + 1) in
      String.sub s 0 i ^ String.make 1 c ^ String.sub s i (n - i)
    | Delete i ->
      let i = i mod n in
      String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1)
    | Truncate_at i -> String.sub s 0 (i mod (n + 1))

let mutation_gen =
  let open QCheck.Gen in
  let byte =
    oneofl [ '<'; '>'; '&'; '"'; '/'; '='; ';'; '#'; 'z'; ' '; '\000'; '\255' ]
  in
  oneof
    [
      map2 (fun i c -> Replace (i, c)) nat byte;
      map2 (fun i c -> Insert (i, c)) nat byte;
      map (fun i -> Delete i) nat;
      map (fun i -> Truncate_at i) nat;
    ]

let mutated_gen =
  QCheck.Gen.(
    map
      (fun (doc, muts) -> List.fold_left apply_mutation (print_doc doc) muts)
      (pair doc_gen (list_size (int_bound 6) mutation_gen)))

let arb_mutated = QCheck.make ~print:(fun s -> s) mutated_gen

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (print doc) = doc" ~count:500 arb_doc
    (fun doc ->
      match Parse.parse (print_doc doc) with
      | Ok doc' -> Xml.equal doc doc'
      | Error e -> QCheck.Test.fail_reportf "strict parse failed: %s" e)

let prop_lenient_agrees =
  QCheck.Test.make ~name:"parse_lenient (print doc) = (doc, [])" ~count:500
    arb_doc (fun doc ->
      match Parse.parse_lenient (print_doc doc) with
      | Some (doc', []) -> Xml.equal doc doc'
      | Some (_, recs) ->
        QCheck.Test.fail_reportf "lenient repaired a valid doc (%d repairs)"
          (List.length recs)
      | None -> QCheck.Test.fail_reportf "lenient found no element")

let prop_mutation_total =
  QCheck.Test.make ~name:"parsers total on mutated docs" ~count:1000 arb_mutated
    (fun src ->
      (match Parse.parse src with Ok _ | Error _ -> ());
      match Parse.parse_lenient src with Some _ | None -> true)

let prop_lenient_deterministic =
  QCheck.Test.make ~name:"parse_lenient deterministic" ~count:300 arb_mutated
    (fun src ->
      let show = function
        | None -> "None"
        | Some (doc, recs) ->
          Printf.sprintf "%s with %d repair(s)" (print_doc doc)
            (List.length recs)
      in
      String.equal (show (Parse.parse_lenient src)) (show (Parse.parse_lenient src)))

(* A lenient parse of a strictly-valid payload is available to the
   protocol layer even after truncation: it still finds the root
   element whenever any opening tag survives. *)
let prop_lenient_survives_truncation =
  QCheck.Test.make ~name:"parse_lenient survives truncation" ~count:300 arb_doc
    (fun doc ->
      let s = print_doc doc in
      (* keep at least the full root opening-tag name *)
      let root_len =
        match doc with Xml.Element (t, _, _) -> String.length t + 1 | _ -> 2
      in
      let keep = max root_len (String.length s / 2) in
      match Parse.parse_lenient (String.sub s 0 keep) with
      | Some (Xml.Element (tag, _, _), _) ->
        (match doc with
        | Xml.Element (root, _, _) -> String.equal tag root
        | Xml.Text _ -> false)
      | Some (Xml.Text _, _) | None -> false)

(* Regression: recovery offsets are BYTE offsets into the damaged
   payload; rendered as line:col they must go through
   [line_col_of_offset], which anchors columns at the latest newline
   before the offset instead of drifting across lines. *)
let test_line_col_of_offset () =
  (* the unknown entity sits on line 3, column 6 *)
  let payload = "<a>\n  <b>ok</b>\n  ln3&bogus;\n</a>\n" in
  (match Parse.parse_lenient payload with
  | None -> Alcotest.fail "lenient found no element"
  | Some (_, recoveries) -> (
    match
      List.find_opt
        (fun (r : Parse.recovery) ->
          r.Parse.reason = "unknown entity &bogus;")
        recoveries
    with
    | None ->
      Alcotest.failf "no unknown-entity recovery among %d repair(s)"
        (List.length recoveries)
    | Some r ->
      Alcotest.(check char)
        "offset points at the '&' byte" '&' payload.[r.Parse.offset];
      let line, col = Parse.line_col_of_offset payload r.Parse.offset in
      Alcotest.(check (pair int int))
        "line:col of the repair" (3, 6) (line, col);
      (* the drift this guards against: the raw byte offset is NOT a
         valid column on any line once the payload is multi-line *)
      Alcotest.(check bool) "byte offset would drift as a column" true
        (r.Parse.offset <> col)));
  (* boundary behavior: offsets clamp to just past the last byte *)
  Alcotest.(check (pair int int))
    "offset 0" (1, 1)
    (Parse.line_col_of_offset payload 0);
  Alcotest.(check (pair int int))
    "offset past the end clamps" (5, 1)
    (Parse.line_col_of_offset payload (String.length payload + 10))

let qcheck_seed =
  match Sys.getenv_opt "KIND_QCHECK_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 0)
  | None -> 0

let to_alcotest t =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| qcheck_seed |])
    t

let suites =
  [
    ( Printf.sprintf "xmlfuzz [seed %d]" qcheck_seed,
      List.map to_alcotest
        [
          prop_roundtrip;
          prop_lenient_agrees;
          prop_mutation_total;
          prop_lenient_deterministic;
          prop_lenient_survives_truncation;
        ]
      @ [
          Alcotest.test_case "recovery offsets map to line:col" `Quick
            test_line_col_of_offset;
        ] );
  ]
