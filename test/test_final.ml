(* Last-mile coverage: lexer/parser corners, top-down equality binding,
   planner ordering, and execution-mode contrast at the mediator. *)

open Logic
open Flogic

let s = Term.sym
let v = Term.var

let parse_ok src =
  match Fl_parser.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_lexer_corners () =
  (* block comments, negative numbers, nested function terms, floats
     followed by the end-of-statement dot *)
  let p =
    parse_ok
      {| /* block
            comment */
         p(-3).
         q(3.5).
         r(f(g(a), -2.25)).
         s(X) :- p(X), X < 0. |}
  in
  Alcotest.(check int) "four statements" 4 (List.length p.Fl_parser.rules);
  match (List.nth p.Fl_parser.rules 2).Molecule.heads with
  | [ Molecule.Pred a ] -> (
    match a.Atom.args with
    | [ Term.App ("f", [ Term.App ("g", _); Term.Const (Term.Float f) ]) ] ->
      Alcotest.(check (float 1e-9)) "negative float" (-2.25) f
    | _ -> Alcotest.fail "nested term shape")
  | _ -> Alcotest.fail "pred expected"

let test_parser_sub_of_quoted () =
  let p = parse_ok {| 'Purkinje Cell' :: 'Spiny Neuron'. |} in
  match p.Fl_parser.rules with
  | [ { Molecule.heads = [ Molecule.Sub (a, b) ]; _ } ] ->
    Alcotest.(check (option string)) "quoted lhs" (Some "Purkinje Cell")
      (Term.as_sym a);
    Alcotest.(check (option string)) "quoted rhs" (Some "Spiny Neuron")
      (Term.as_sym b)
  | _ -> Alcotest.fail "sub expected"

let test_topdown_eq_binding () =
  (* equality used as a binder inside a tabled rule *)
  let prog =
    Datalog.Program.make_exn
      ([ Rule.fact (Atom.make "p" [ s "a" ]) ]
      @ [
          Rule.make
            (Atom.make "tagged" [ v "X"; v "T" ])
            [
              Literal.pos "p" [ v "X" ];
              Literal.cmp Literal.Eq (v "T") (Term.app "tag" [ v "X" ]);
            ];
        ])
  in
  match
    Datalog.Topdown.solve prog (Datalog.Database.create ())
      (Atom.make "tagged" [ s "a"; v "T" ])
  with
  | [ [ _; Term.App ("tag", [ t ]) ] ] ->
    Alcotest.(check bool) "skolem-style tag built" true (Term.equal t (s "a"))
  | other -> Alcotest.failf "unexpected answers (%d)" (List.length other)

let test_planner_orders_selective_first () =
  (* the group with a ground selection must be planned first *)
  let med =
    Neuro.Sources.standard_mediator { Neuro.Sources.seed = 3; scale = 20 }
  in
  match
    Mediation.Conjunctive.plan med
      [
        Molecule.Pos (Molecule.Isa (v "A", s "NCMIR.protein_amount"));
        Molecule.Pos (Molecule.Meth_val (v "A", "location", v "C"));
        Molecule.Pos (Molecule.Isa (v "N", s "SENSELAB.neurotransmission"));
        Molecule.Pos
          (Molecule.Meth_val (v "N", "organism", Term.str "rat"));
        Molecule.Pos (Molecule.Meth_val (v "N", "receiving_compartment", v "C"));
      ]
  with
  | Ok (first :: _) ->
    Alcotest.(check string) "selective group first" "N"
      first.Mediation.Conjunctive.variable
  | Ok [] -> Alcotest.fail "empty plan"
  | Error e -> Alcotest.failf "plan failed: %s" e

let test_mediator_modes_contrast () =
  let params = { Neuro.Sources.seed = 3; scale = 10 } in
  let med_a =
    Neuro.Sources.standard_mediator
      ~config:
        {
          Mediation.Mediator.default_config with
          Mediation.Mediator.dl_mode = Dl.Translate.Assertion;
        }
      params
  in
  let med_ic =
    Neuro.Sources.standard_mediator
      ~config:
        {
          Mediation.Mediator.default_config with
          Mediation.Mediator.dl_mode = Dl.Translate.Ic;
        }
      params
  in
  Alcotest.(check bool) "assertion mode witness-free" true
    (Mediation.Mediator.consistent med_a);
  Alcotest.(check bool) "IC mode reports incompleteness" false
    (Mediation.Mediator.consistent med_ic);
  (* and the assertion placeholders actually exist *)
  let db = Mediation.Mediator.materialize med_a in
  let placeholders =
    Datalog.Database.facts db Compile.isa_p
    |> List.filter (fun (a : Atom.t) ->
           match a.Atom.args with
           | [ x; _ ] -> Dl.Translate.is_placeholder x
           | _ -> false)
  in
  Alcotest.(check bool) "placeholders created" true (placeholders <> [])

let suites =
  [
    ( "final",
      [
        Alcotest.test_case "lexer corners" `Quick test_lexer_corners;
        Alcotest.test_case "quoted subclass" `Quick test_parser_sub_of_quoted;
        Alcotest.test_case "topdown eq binding" `Quick test_topdown_eq_binding;
        Alcotest.test_case "planner ordering" `Quick test_planner_orders_selective_first;
        Alcotest.test_case "execution modes" `Quick test_mediator_modes_contrast;
      ] );
  ]
