(* The cardinality/cost abstract interpretation (Analysis.Card), the
   complexity-hazard pass (Analysis.Cost_lint), and the engine's
   cost-oracle hook.

   Soundness is also property-tested against the materialized model on
   random programs in Test_differential; here the exact arithmetic,
   the boundedness check, key inference, the seeded sample goldens and
   the report counters are pinned. *)

open Logic
module Card = Analysis.Card
module Cost_lint = Analysis.Cost_lint
module D = Analysis.Diagnostic
module Engine = Datalog.Engine
module Database = Datalog.Database
module Program = Datalog.Program

let v = Term.var
let s = Term.sym

let iv lo hi = { Card.lo; hi }

let check_iv ctx expected got =
  Alcotest.(check (pair int (option int)))
    ctx
    (expected.Card.lo, expected.Card.hi)
    (got.Card.lo, got.Card.hi)

let edge a b = Rule.fact (Atom.make "e" [ s a; s b ])

(* ------------------------------------------------------------------ *)
(* Exact intervals on DAG programs                                     *)

let dag_exact () =
  let rules =
    [
      edge "a" "b";
      edge "b" "c";
      edge "c" "d";
      (* copy: |p| <= |e| *)
      Rule.make (Atom.make "p" [ v "X"; v "Y" ]) [ Literal.pos "e" [ v "X"; v "Y" ] ];
      (* projection: |q| <= distinct first columns of e *)
      Rule.make (Atom.make "q" [ v "X" ]) [ Literal.pos "e" [ v "X"; v "Y" ] ];
      (* key join: Y is a lookup into e's key column, not a scan *)
      Rule.make (Atom.make "j" [ v "X"; v "Z" ])
        [ Literal.pos "e" [ v "X"; v "Y" ]; Literal.pos "e" [ v "Y"; v "Z" ] ];
    ]
  in
  let res = Card.analyze rules in
  check_iv "facts are exact" (iv 3 (Some 3)) (Card.card res "e");
  check_iv "copy is bounded by the source" (iv 0 (Some 3)) (Card.card res "p");
  check_iv "projection bounded by distinct column values" (iv 0 (Some 3))
    (Card.card res "q");
  (* e's first column is a key (a, b, c all distinct), so the join
     degenerates to one probe per e-row *)
  Alcotest.(check bool) "e col 0 is a key" true (List.mem 0 (Card.keys res "e"));
  check_iv "key join stays linear" (iv 0 (Some 3)) (Card.card res "j");
  Alcotest.(check bool) "nothing here is unbounded" false
    (List.exists (fun p -> Card.unbounded res p) [ "e"; "p"; "q"; "j" ])

(* Key inference survives a copy but dies on a union *)
let key_inference () =
  let rules =
    [
      edge "a" "b";
      edge "b" "c";
      Rule.make (Atom.make "c1" [ v "X"; v "Y" ]) [ Literal.pos "e" [ v "X"; v "Y" ] ];
      Rule.make (Atom.make "u" [ v "X"; v "Y" ]) [ Literal.pos "e" [ v "X"; v "Y" ] ];
      Rule.make (Atom.make "u" [ v "Y"; v "X" ]) [ Literal.pos "e" [ v "X"; v "Y" ] ];
    ]
  in
  let res = Card.analyze rules in
  Alcotest.(check bool) "copy keeps the key" true
    (List.mem 0 (Card.keys res "c1"));
  Alcotest.(check (list int)) "union loses all keys" [] (Card.keys res "u")

(* ------------------------------------------------------------------ *)
(* Recursion: widening keeps tc finite, the boundedness check fires on
   value-synthesising recursion                                        *)

let recursion () =
  let rules =
    [
      edge "a" "b";
      edge "b" "c";
      edge "c" "d";
      Rule.make (Atom.make "tc" [ v "X"; v "Y" ]) [ Literal.pos "e" [ v "X"; v "Y" ] ];
      Rule.make (Atom.make "tc" [ v "X"; v "Z" ])
        [ Literal.pos "tc" [ v "X"; v "Y" ]; Literal.pos "e" [ v "Y"; v "Z" ] ];
      Rule.fact (Atom.make "g" [ s "z" ]);
      Rule.make (Atom.make "g" [ Term.app "f" [ v "X" ] ]) [ Literal.pos "g" [ v "X" ] ];
    ]
  in
  let res = Card.analyze rules in
  (* the true tc has 6 tuples; the widened bound must contain it and
     stay finite (no fresh values are synthesised) *)
  Alcotest.(check bool) "tc bound contains the actual closure" true
    (Card.contains (Card.card res "tc") 6);
  Alcotest.(check bool) "tc stays finite" false (Card.unbounded res "tc");
  Alcotest.(check bool) "skolem growth is unbounded" true
    (Card.unbounded res "g");
  let growing =
    List.exists
      (fun (_, (c : Card.rule_cost)) -> c.Card.growing)
      (Card.rule_costs res)
  in
  Alcotest.(check bool) "the growing rule is flagged" true growing

(* ------------------------------------------------------------------ *)
(* Seeds: open predicates are unbounded unless capped                  *)

let seeds_and_caps () =
  let rules =
    [ Rule.make (Atom.make "p" [ v "X" ]) [ Literal.pos "ext" [ v "X" ] ] ]
  in
  let open_pred p = String.equal p "ext" in
  let res = Card.analyze ~assume_nonempty:open_pred rules in
  Alcotest.(check bool) "uncapped open predicate is unbounded" true
    (Card.unbounded res "ext" && Card.unbounded res "p");
  let seed p = if String.equal p "ext" then Some (iv 0 (Some 42)) else None in
  let res = Card.analyze ~assume_nonempty:open_pred ~seed rules in
  check_iv "the cap flows through" (iv 0 (Some 42)) (Card.card res "p");
  Alcotest.(check (option int)) "estimate is oracle-shaped" (Some 42)
    (Card.estimate res "p")

(* ------------------------------------------------------------------ *)
(* Cost model: cross products are counted, and a selective literal is
   pulled ahead of an unbounded scan                                   *)

let cost_model () =
  let rules =
    [
      edge "a" "b";
      edge "b" "c";
      Rule.fact (Atom.make "big" [ s "x"; s "y" ]);
      Rule.make
        (Atom.make "cross" [ v "X"; v "U" ])
        [ Literal.pos "e" [ v "X"; v "Y" ]; Literal.pos "big" [ v "U"; v "W" ] ];
    ]
  in
  let res = Card.analyze rules in
  let _, c =
    List.find
      (fun ((r : Rule.t), _) -> String.equal (Rule.head_pred r) "cross")
      (Card.rule_costs res)
  in
  (* |big| = 1, so the product cannot exceed one row per e-row: the
     hazard counter stays quiet (both sides must exceed one row) *)
  Alcotest.(check int) "1-row scan is not a cross product" 0
    c.Card.cross_products;
  let rules =
    rules @ [ Rule.fact (Atom.make "big" [ s "x2"; s "y2" ]) ]
  in
  let res = Card.analyze rules in
  let _, c =
    List.find
      (fun ((r : Rule.t), _) -> String.equal (Rule.head_pred r) "cross")
      (Card.rule_costs res)
  in
  Alcotest.(check int) "2x2 product is flagged" 1 c.Card.cross_products;
  check_iv "product bound multiplies" (iv 0 (Some 4)) c.Card.est

(* ------------------------------------------------------------------ *)
(* The oracle: answer-identical, reported, and validated              *)

let tc_program n =
  Program.make_exn
    (Rule.make (Atom.make "tc" [ v "X"; v "Y" ]) [ Literal.pos "e" [ v "X"; v "Y" ] ]
    :: Rule.make
         (Atom.make "tc" [ v "X"; v "Y" ])
         [ Literal.pos "tc" [ v "X"; v "Z" ]; Literal.pos "e" [ v "Z"; v "Y" ] ]
    :: List.init n (fun k ->
           Rule.fact
             (Atom.make "e"
                [ s (Printf.sprintf "m%d" k); s (Printf.sprintf "m%d" (k + 1)) ])))

let oracle_counters () =
  let p = tc_program 16 in
  let res = Card.analyze (Program.rules p) in
  let config =
    { Engine.default_config with Engine.cost_oracle = Some (Card.oracle res) }
  in
  let rep = ref Engine.empty_report in
  let db = Engine.materialize ~config ~report:rep p (Database.create ()) in
  Alcotest.(check int) "oracle run computes the full closure"
    (16 * 17 / 2)
    (List.length (Database.all_facts db) - 16);
  Alcotest.(check bool) "cost_oracle_used counted" true
    (!rep.Engine.cost_oracle_used > 0);
  Alcotest.(check bool) "est_vs_actual filled" true
    (!rep.Engine.est_vs_actual > 0.0);
  (* without the oracle both counters stay at their sentinels *)
  let rep0 = ref Engine.empty_report in
  ignore (Engine.materialize ~report:rep0 p (Database.create ()));
  Alcotest.(check int) "no oracle: cost_oracle_used = 0" 0
    !rep0.Engine.cost_oracle_used;
  Alcotest.(check (float 0.0)) "no oracle: est_vs_actual = 0" 0.0
    !rep0.Engine.est_vs_actual

let order_validation () =
  let r =
    Rule.make (Atom.make "p" [ v "X" ])
      [ Literal.pos "e" [ v "X"; v "Y" ]; Literal.neg "q" [ v "X" ] ]
  in
  Alcotest.(check bool) "scan-then-filter is evaluable" true
    (Datalog.Plan.order_ok r [ 0; 1 ]);
  Alcotest.(check bool) "negation before its bindings is not" false
    (Datalog.Plan.order_ok r [ 1; 0 ]);
  Alcotest.(check bool) "wrong length is not" false
    (Datalog.Plan.order_ok r [ 0 ]);
  Alcotest.(check bool) "not a permutation is not" false
    (Datalog.Plan.order_ok r [ 0; 0 ])

(* ------------------------------------------------------------------ *)
(* Cost_lint: codes, budget escalation, determinism                    *)

let lint_codes () =
  let rules =
    [
      edge "a" "b";
      edge "b" "c";
      edge "c" "d";
      Rule.make (Atom.make "cross" [ v "X"; v "U" ])
        [ Literal.pos "e" [ v "X"; v "Y" ]; Literal.pos "e" [ v "U"; v "W" ] ];
      Rule.fact (Atom.make "g" [ s "z" ]);
      Rule.make (Atom.make "g" [ Term.app "f" [ v "X" ] ]) [ Literal.pos "g" [ v "X" ] ];
    ]
  in
  let codes ds = List.sort_uniq compare (List.map (fun d -> d.D.code) ds) in
  let without = Cost_lint.lint rules in
  Alcotest.(check bool) "cross-product-join fires" true
    (List.mem "cross-product-join" (codes without));
  Alcotest.(check bool) "unbounded-growth fires" true
    (List.mem "unbounded-growth" (codes without));
  Alcotest.(check bool) "no budget, no over-budget" false
    (List.mem "over-budget" (codes without));
  let budgeted = Cost_lint.lint ~budget:5 rules in
  Alcotest.(check bool) "budget escalates to over-budget" true
    (List.mem "over-budget" (codes budgeted));
  Alcotest.(check bool) "over-budget is an error" true
    (List.exists
       (fun d -> d.D.code = "over-budget" && d.D.severity = D.Error)
       budgeted)

let normalize_deterministic () =
  let mk sev pass code msg =
    D.make ~severity:sev ~pass ~code
      ~location:(D.Rule { index = 1; text = "r"; pos = None })
      msg
  in
  let a = mk D.Warning "cost" "cross-product-join" "m1" in
  let b = mk D.Error "rules" "unsafe-rule" "m2" in
  let c = mk D.Warning "cost" "unbounded-growth" "m3" in
  let n = D.normalize [ c; a; b; a; c ] in
  Alcotest.(check int) "duplicates removed" 3 (List.length n);
  Alcotest.(check (list string)) "stable (location, pass, code) order"
    (List.map (fun d -> d.D.code) (D.normalize [ b; c; a ]))
    (List.map (fun d -> d.D.code) n)

(* ------------------------------------------------------------------ *)
(* Sample goldens: the seeded hazards in broken.flp fire through the
   kindlint pipeline; the clean sample stays silent                    *)

let read_sample name =
  let candidates =
    [
      Filename.concat "../samples" name;
      Filename.concat "samples" name;
      Filename.concat "../../samples" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.failf "sample %s not found from %s" name (Sys.getcwd ())
  | Some path ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    src

let lint_sample ?budget name =
  let parsed = Flogic.Fl_parser.parse_program_exn (read_sample name) in
  let program =
    Flogic.Fl_program.make ~signature:parsed.Flogic.Fl_parser.signature
      parsed.Flogic.Fl_parser.rules
  in
  Analysis.Kindlint.lint_program ?budget
    ~positions:parsed.Flogic.Fl_parser.rule_positions program

let cost_codes = [ "cross-product-join"; "unbounded-growth" ]

let broken_goldens () =
  let diags = lint_sample "broken.flp" in
  let codes = List.sort_uniq compare (List.map (fun d -> d.D.code) diags) in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "broken.flp trips %s" c)
        true (List.mem c codes))
    cost_codes;
  let hits code =
    List.filter_map
      (fun d ->
        match (d.D.code = code, d.D.location) with
        | true, D.Rule { text; _ } -> Some text
        | _ -> None)
      diags
  in
  Alcotest.(check bool) "hoard is the cross product" true
    (List.exists
       (fun t -> List.mem "hoard" (String.split_on_char '(' t))
       (hits "cross-product-join"));
  Alcotest.(check bool) "grown is the unbounded recursion" true
    (List.exists
       (fun t -> List.mem "grown" (String.split_on_char '(' t))
       (hits "unbounded-growth"));
  (* a small budget escalates the seeded blowups to reject level *)
  let budgeted = lint_sample ~budget:50 "broken.flp" in
  Alcotest.(check bool) "--budget escalates broken.flp" true
    (List.exists
       (fun d -> d.D.code = "over-budget" && d.D.severity = D.Error)
       budgeted)

let clean_goldens () =
  let diags = lint_sample "spines.flp" in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "spines.flp has no %s" c)
        false
        (List.exists (fun d -> d.D.code = c) diags))
    ("over-budget" :: cost_codes)

let suites =
  [
    ( "cost",
      [
        Alcotest.test_case "exact intervals on DAG programs" `Quick dag_exact;
        Alcotest.test_case "key inference" `Quick key_inference;
        Alcotest.test_case "widening vs the boundedness check" `Quick recursion;
        Alcotest.test_case "open predicates and seeded caps" `Quick
          seeds_and_caps;
        Alcotest.test_case "cross products in the cost model" `Quick cost_model;
        Alcotest.test_case "oracle fills the report counters" `Quick
          oracle_counters;
        Alcotest.test_case "forced orders are validated" `Quick order_validation;
        Alcotest.test_case "lint codes and budget escalation" `Quick lint_codes;
        Alcotest.test_case "normalize is deterministic" `Quick
          normalize_deterministic;
        Alcotest.test_case "broken.flp cost goldens" `Quick broken_goldens;
        Alcotest.test_case "spines.flp stays cost-clean" `Quick clean_goldens;
      ] );
  ]
