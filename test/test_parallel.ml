(* Differential testing of domain-parallel evaluation: the parallel
   engine must be invisible. On the same randomly generated safe
   stratified programs as test_differential, every domain count in
   {1, 2, 4} must produce

     - the identical database from Engine.materialize,
     - identical report counters (domains_used / parallel_batches
       excepted — those differ by design),
     - identical Maintain behavior: same maintained database, same
       per-stratum actions, same counters after the same delta,
     - identical dead-rule pruning (rules_pruned and the pruned model),

   and the concurrent federation gather must preserve completeness
   reports and replay-exact per-channel fault transcripts against the
   sequential gather (directed Delay/Transient case below).

   Parexec.min_rows is lowered to 2 for the duration of each test so
   the tiny random deltas actually take the partitioned path — at the
   default threshold nothing here would fan out and the suite would
   vacuously pass.

   Seeded like the other QCheck-style suites: case [i] uses seed
   [base*10_000 + i] with [base] from KIND_QCHECK_SEED (default 0);
   KIND_PAR_CASES overrides the case count. *)

open Logic
module Engine = Datalog.Engine
module Maintain = Datalog.Maintain
module Database = Datalog.Database
module Program = Datalog.Program

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try int_of_string (String.trim s) with _ -> default)
  | None -> default

let cases = max 200 (env_int "KIND_PAR_CASES" 200)
let base_seed = env_int "KIND_QCHECK_SEED" 0
let domain_counts = [ 1; 2; 4 ]

let forcing_fanout f () =
  let saved = !Datalog.Parexec.min_rows in
  Datalog.Parexec.min_rows := 2;
  Fun.protect ~finally:(fun () -> Datalog.Parexec.min_rows := saved) f

let config_for d = { Engine.default_config with Engine.domains = d }

let facts_str db =
  List.sort compare (List.map Atom.to_string (Database.all_facts db))

let check_same ctx a b =
  Alcotest.(check (list string)) ctx (facts_str a) (facts_str b)

(* Engine reports must agree field by field, except the two that
   describe the parallelism itself. *)
let report_sig (r : Engine.report) =
  [
    Printf.sprintf "stratified=%b" r.Engine.stratified;
    Printf.sprintf "strata=%d" r.Engine.strata;
    Printf.sprintf "rounds=%d" r.Engine.rounds;
    Printf.sprintf "derived=%d" r.Engine.derived;
    Printf.sprintf "skolems_suppressed=%d" r.Engine.skolems_suppressed;
    Printf.sprintf "joins=%d" r.Engine.joins;
    Printf.sprintf "tuples_scanned=%d" r.Engine.tuples_scanned;
    Printf.sprintf "index_hits=%d" r.Engine.index_hits;
    Printf.sprintf "plan_cache_hits=%d" r.Engine.plan_cache_hits;
    Printf.sprintf "rules_pruned=%d" r.Engine.rules_pruned;
    Printf.sprintf "atoms_minimized=%d" r.Engine.atoms_minimized;
    Printf.sprintf "cost_oracle_used=%d" r.Engine.cost_oracle_used;
  ]

let check_report ctx a b =
  Alcotest.(check (list string)) ctx (report_sig a) (report_sig b)

let check_maintain_report ctx (a : Maintain.report) (b : Maintain.report) =
  let scrub (r : Maintain.report) = { r with Maintain.parallel_batches = 0 } in
  if scrub a <> scrub b then
    Alcotest.failf "%s: maintenance reports diverge (%d/%d added, %d/%d \
                    removed, %d/%d rounds, %d/%d joins, %d/%d scanned)"
      ctx a.Maintain.added b.Maintain.added a.Maintain.removed
      b.Maintain.removed a.Maintain.rounds b.Maintain.rounds a.Maintain.joins
      b.Maintain.joins a.Maintain.tuples_scanned b.Maintain.tuples_scanned

(* A deterministic dead-rule prune hook: drop rules with a positive
   EDB body literal whose extent is empty. Soundness does not matter
   for the differential — the same hook runs at every domain count and
   the results must agree with each other. *)
let prune_hook rules db =
  let idb =
    List.filter_map
      (fun (r : Rule.t) ->
        if r.Rule.body = [] then None else Some (Rule.head_pred r))
      rules
    |> List.sort_uniq compare
  in
  List.filter
    (fun (r : Rule.t) ->
      List.for_all
        (fun (l : Literal.t) ->
          match l with
          | Literal.Pos a ->
            List.mem a.Atom.pred idb
            || Database.facts db a.Atom.pred <> []
          | _ -> true)
        r.Rule.body)
    rules

let run_case seed =
  let st = Random.State.make [| seed |] in
  let rules, idb = Test_differential.gen_rules st in
  let p = Program.make_exn rules in
  let edb_facts = Test_differential.gen_edb st in
  let edb = Database.of_facts edb_facts in
  let ctx d what = Printf.sprintf "seed %d @ %d domains: %s" seed d what in
  let fail_on_error what = function
    | Ok x -> x
    | Error e -> Alcotest.failf "seed %d: %s: %s" seed what e
  in
  let d = Test_differential.gen_delta st ~edb_facts ~idb in
  let materialized c =
    let rep = ref Engine.empty_report in
    let db = Engine.materialize ~config:c ~report:rep p edb in
    (db, !rep)
  in
  let maintained dcount =
    let h =
      fail_on_error "Maintain.init"
        (Maintain.init ?pool:(Kind.Pool.get dcount) p edb)
    in
    let rep = fail_on_error "Maintain.apply" (Maintain.apply h d) in
    (Maintain.db h, rep)
  in
  (* warm the global plan cache once so plan_cache_hits is comparable
     across the runs below (the first compilation of a program misses,
     every later run hits — an ordering effect, not a parallel one) *)
  ignore (Engine.materialize p edb);
  let db1, rep1 = materialized (config_for 1) in
  let pdb1, prep1 =
    materialized { (config_for 1) with Engine.prune = Some prune_hook }
  in
  let mdb1, mrep1 = maintained 1 in
  List.iter
    (fun dc ->
      let dbd, repd = materialized (config_for dc) in
      check_same (ctx dc "materialize") db1 dbd;
      check_report (ctx dc "materialize counters") rep1 repd;
      let pdbd, prepd =
        materialized { (config_for dc) with Engine.prune = Some prune_hook }
      in
      check_same (ctx dc "pruned materialize") pdb1 pdbd;
      Alcotest.(check int)
        (ctx dc "rules_pruned")
        prep1.Engine.rules_pruned prepd.Engine.rules_pruned;
      let mdbd, mrepd = maintained dc in
      check_same (ctx dc "maintained database") mdb1 mdbd;
      check_maintain_report (ctx dc "maintain counters") mrep1 mrepd)
    (List.tl domain_counts)

let differential () =
  for i = 0 to cases - 1 do
    run_case ((base_seed * 10_000) + i)
  done

(* ------------------------------------------------------------------ *)
(* Directed: a Delay/Transient-faulted source under the concurrent
   gather must yield the same completeness report, the same per-channel
   fault transcript, the same per-source health counters and the same
   materialization as the sequential gather. Only the runtime's global
   clock composition may differ (sum of fetches vs their max). *)

module M = Mediation.Mediator
module R = Mediation.Runtime
module Fault = Wrapper.Fault

let faulted_mediator domains =
  let config = { M.default_config with M.domains } in
  let med =
    Neuro.Sources.standard_mediator ~config { Neuro.Sources.seed = 5; scale = 25 }
  in
  (* NCMIR answers late then flakes once (the retry absorbs it);
     SENSELAB is delayed on every call *)
  List.iter
    (fun (source, plan) ->
      match M.set_fault_plan med ~source plan with
      | Ok () -> ()
      | Error e -> Alcotest.failf "set_fault_plan %s: %s" source e)
    [
      ( "NCMIR",
        Fault.Script
          [
            { Fault.at = 1; fault = Fault.Delay 40 };
            { Fault.at = 2; fault = Fault.Transient "net burp" };
          ] );
      ("SENSELAB", Fault.Always (Fault.Delay 15));
    ];
  med

let transcript_of med source =
  match M.fault_channel med source with
  | Some ch ->
    List.map
      (fun (at, f) -> Printf.sprintf "%d:%s" at (Fault.fault_to_string f))
      (Fault.transcript ch)
  | None -> Alcotest.failf "no channel for %s" source

let health_sig med =
  List.map
    (fun (name, h) ->
      Printf.sprintf "%s calls=%d failures=%d retries=%d trips=%d absorbed=%d"
        name h.R.calls h.R.failures h.R.retries h.R.trips h.R.absorbed)
    (M.health med)

let completeness_sig (c : M.completeness) =
  ( c.M.contributed,
    List.map (fun (s, r) -> s ^ ": " ^ r) c.M.skipped,
    c.M.suspect )

let gather_delay () =
  let seq = faulted_mediator 1 and par = faulted_mediator 4 in
  let db_seq = M.materialize seq and db_par = M.materialize par in
  check_same "faulted gather: same materialization" db_seq db_par;
  let sc, ss, su = completeness_sig (M.completeness seq) in
  let pc, ps, pu = completeness_sig (M.completeness par) in
  Alcotest.(check (list string)) "contributed" sc pc;
  Alcotest.(check (list string)) "skipped" ss ps;
  Alcotest.(check (list string)) "suspect" su pu;
  List.iter
    (fun source ->
      Alcotest.(check (list string))
        (source ^ " transcript")
        (transcript_of seq source) (transcript_of par source))
    [ "SYNAPSE"; "NCMIR"; "SENSELAB" ];
  Alcotest.(check (list string)) "health counters" (health_sig seq)
    (health_sig par);
  (* concurrent-start semantics: the parallel gather's clock is the
     slowest fetch, the sequential one the sum — with faults on two of
     three sources the difference is guaranteed *)
  Alcotest.(check bool) "concurrent clock <= sequential clock" true
    (R.clock (M.runtime par) <= R.clock (M.runtime seq))

(* Directed: [Pool.shutdown ?deadline] must return even when a worker
   is wedged in a task at shutdown time — the at_exit join used to
   deadlock when a worker raised (or never finished) during the final
   drain. A private pool runs a batch whose tasks spin on a release
   flag; the bounded shutdown must come back promptly with the workers
   still spinning, and after release an unbounded shutdown still joins
   them cleanly. *)
let pool_bounded_shutdown () =
  let p = Kind.Pool.create 3 in
  let release = Atomic.make false in
  let started = Atomic.make 0 in
  let submitted = Atomic.make false in
  (* run the batch from a separate domain: run_list blocks until the
     batch drains, which only happens after [release] *)
  let runner =
    Domain.spawn (fun () ->
        Atomic.set submitted true;
        Kind.Pool.run_list p
          (List.init 3 (fun _ () ->
               Atomic.incr started;
               while not (Atomic.get release) do
                 Domain.cpu_relax ()
               done)))
  in
  while Atomic.get started < 2 do
    Domain.cpu_relax ()
  done;
  (* two lanes are provably wedged inside tasks; the bounded shutdown
     must give up on them instead of hanging *)
  let t0 = Unix.gettimeofday () in
  Kind.Pool.shutdown ~deadline:0.2 p;
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "bounded shutdown returned in %.2fs" elapsed)
    true (elapsed < 2.0);
  Alcotest.(check bool) "tasks were still running when it returned" true
    (Atomic.get submitted);
  (* unwedge: the batch drains, the stop flag set above ends the worker
     loops, and an undeadlined shutdown can still join them *)
  Atomic.set release true;
  ignore (Domain.join runner : unit list);
  Kind.Pool.shutdown p

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case
          (Printf.sprintf
             "%d random programs agree across 1/2/4 domains (db, counters, \
              maintain, prune)"
             cases)
          `Quick
          (forcing_fanout differential);
        Alcotest.test_case
          "faulted concurrent gather == sequential (completeness, \
           transcripts, health)"
          `Quick
          (forcing_fanout gather_delay);
        Alcotest.test_case "bounded shutdown abandons wedged workers" `Quick
          pool_bounded_shutdown;
      ] );
  ]
