(* Semantic containment & termination analysis (passes 9 and 10):

   - directed Chandra–Merlin verdicts, the chase modulo the domain map,
     satisfiability and greedy minimization;
   - the four seeded diagnostics in samples/broken.flp fire through the
     kindlint pipeline, and spines.flp stays clean;
   - randomized soundness differentials (deterministic: case [i] uses
     seed [base*10_000 + i] with [base] from KIND_QCHECK_SEED,
     case counts overridable via KIND_QCHECK_CASES):
       (a) contained(q1, q2) implies eval(q1) ⊆ eval(q2) on random
           databases, and the retired syntactic subsumption oracle
           implies the semantic verdict;
       (b) engine/maintenance minimization is answer-invisible under
           naive, semi-naive and incremental evaluation;
       (c) every random program the termination analysis accepts
           reaches its fixpoint without the term-depth guard firing;
   - the mediator warns about a redundant IVD at installation;
   - the SARIF rendering carries the new rule ids. *)

open Logic
module A = Analysis
module C = Analysis.Contain
module T = Analysis.Terminate
module D = Analysis.Diagnostic
module Engine = Datalog.Engine
module Maintain = Datalog.Maintain
module Database = Datalog.Database
module Program = Datalog.Program

let v = Term.var
let s = Term.sym

let env_int name default =
  match Sys.getenv_opt name with
  | Some x -> ( try int_of_string (String.trim x) with _ -> default)
  | None -> default

let cases = max 200 (env_int "KIND_QCHECK_CASES" 220)
let base_seed = env_int "KIND_QCHECK_SEED" 0

let with_code code ds = List.filter (fun (d : D.t) -> d.D.code = code) ds

(* naive substring test — diagnostics are short *)
let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Directed containment verdicts *)

let rule h b = Rule.make h b

let test_directed () =
  let general = rule (Atom.make "p" [ v "X" ]) [ Literal.pos "e" [ v "X" ] ] in
  let specific =
    rule
      (Atom.make "p" [ v "X" ])
      [ Literal.pos "e" [ v "X" ]; Literal.pos "f" [ v "X" ] ]
  in
  Alcotest.(check bool) "specific ⊑ general" true
    (C.contained C.empty_ctx specific general);
  Alcotest.(check bool) "general ⋢ specific" false
    (C.contained C.empty_ctx general specific);
  (* alpha-renaming is invisible *)
  let r1 =
    rule (Atom.make "p" [ v "X" ]) [ Literal.pos "e" [ v "X"; v "Y" ] ]
  in
  let r2 =
    rule (Atom.make "p" [ v "A" ]) [ Literal.pos "e" [ v "A"; v "B" ] ]
  in
  Alcotest.(check bool) "alpha-equivalent rules" true (C.equivalent C.empty_ctx r1 r2);
  (* a proper homomorphism: two joined scans fold onto one *)
  let fold1 =
    rule
      (Atom.make "p" [ v "X" ])
      [ Literal.pos "e" [ v "X"; v "Y" ]; Literal.pos "e" [ v "X"; v "Z" ] ]
  in
  Alcotest.(check bool) "folding hom r1 ⊑ r2 and back" true
    (C.equivalent C.empty_ctx fold1 r1);
  (* numeric entailment: D > 0.5 entails D > 0.4, not conversely *)
  let narrow =
    rule
      (Atom.make "p" [ v "X" ])
      [
        Literal.pos "m" [ v "X"; v "D" ];
        Literal.cmp Literal.Gt (v "D") (Term.float 0.5);
      ]
  in
  let wide =
    rule
      (Atom.make "p" [ v "X" ])
      [
        Literal.pos "m" [ v "X"; v "D" ];
        Literal.cmp Literal.Gt (v "D") (Term.float 0.4);
      ]
  in
  Alcotest.(check bool) "interval entailment" true
    (C.contained C.empty_ctx narrow wide);
  Alcotest.(check bool) "no reverse entailment" false
    (C.contained C.empty_ctx wide narrow)

let test_chase_modulo_dm () =
  let dm = Domain_map.Dmap.isa Domain_map.Dmap.empty "spine" "component" in
  let ctx = C.make_ctx ~dm () in
  let r =
    rule
      (Atom.make "q" [ v "X" ])
      [
        Literal.pos "isa" [ v "X"; s "spine" ];
        Literal.pos "isa" [ v "X"; s "component" ];
      ]
  in
  (match C.implied_atoms ctx r with
  | [ a ] ->
    Alcotest.(check string) "the up-propagated membership is implied"
      "isa(X, component)" (Atom.to_string a)
  | other ->
    Alcotest.failf "expected one implied atom, got %d" (List.length other));
  let m = C.minimize_rule ctx r in
  Alcotest.(check int) "minimized to one atom" 1 (List.length m.Rule.body);
  Alcotest.(check bool) "minimized rule is equivalent" true
    (C.equivalent ctx m r);
  (* without the domain map nothing is implied *)
  Alcotest.(check int) "no dm, no implication" 0
    (List.length (C.implied_atoms C.empty_ctx r))

let test_unsatisfiable () =
  let contradiction =
    rule
      (Atom.make "q" [ v "X" ])
      [
        Literal.pos "m" [ v "X"; v "D" ];
        Literal.cmp Literal.Gt (v "D") (Term.float 1.0);
        Literal.cmp Literal.Lt (v "D") (Term.float 0.2);
      ]
  in
  Alcotest.(check bool) "empty interval detected" true
    (C.unsatisfiable C.empty_ctx contradiction <> None);
  let disjoint_ctx = C.make_ctx ~disjoint:[ ("axon", "dendrite") ] () in
  let both =
    rule
      (Atom.make "q" [ v "X" ])
      [
        Literal.pos "isa" [ v "X"; s "axon" ];
        Literal.pos "isa" [ v "X"; s "dendrite" ];
      ]
  in
  Alcotest.(check bool) "disjoint membership detected" true
    (C.unsatisfiable disjoint_ctx both <> None);
  let fine =
    rule (Atom.make "q" [ v "X" ]) [ Literal.pos "isa" [ v "X"; s "axon" ] ]
  in
  Alcotest.(check bool) "satisfiable rule passes" true
    (C.unsatisfiable disjoint_ctx fine = None)

(* ------------------------------------------------------------------ *)
(* Directed termination verdicts *)

let test_terminate_directed () =
  let vat_cycle =
    [
      rule (Atom.make "brim" [ v "X" ]) [ Literal.pos "vat" [ v "X" ] ];
      rule
        (Atom.make "vat" [ Term.app "g" [ v "X" ] ])
        [ Literal.pos "brim" [ v "X" ] ];
    ]
  in
  (match T.analyze vat_cycle with
  | T.Unsafe cyc ->
    let msg = T.cycle_to_string cyc in
    Alcotest.(check bool) "cycle names the position" true
      (List.exists
         (fun p -> String.length p >= 4 && String.sub p 0 4 = "vat#")
         cyc.T.positions);
    Alcotest.(check bool) "cycle names the functor" true
      (List.mem "g" cyc.T.functors);
    Alcotest.(check bool) "cycle renders" true (String.length msg > 0)
  | T.Safe _ -> Alcotest.fail "the vat/brim functor cycle must be unsafe");
  (* the same cycle behind an is_const guard cannot re-consume its own
     skolems: the super-weak refinement accepts it *)
  let guarded =
    [
      rule (Atom.make "brim" [ v "X" ]) [ Literal.pos "vat" [ v "X" ] ];
      rule
        (Atom.make "vat" [ Term.app "g" [ v "X" ] ])
        [
          Literal.pos "brim" [ v "X" ];
          Literal.pos "builtin:is_const" [ v "X" ];
        ];
    ]
  in
  (match T.analyze guarded with
  | T.Safe { refined } ->
    Alcotest.(check bool) "accepted by the refinement" true refined
  | T.Unsafe _ -> Alcotest.fail "the guarded cycle is safe");
  (* a functor off every cycle is harmless *)
  let acyclic =
    [
      rule
        (Atom.make "wrap" [ Term.app "f" [ v "X" ] ])
        [ Literal.pos "base" [ v "X" ] ];
      rule (Atom.make "top" [ v "X" ]) [ Literal.pos "wrap" [ v "X" ] ];
    ]
  in
  match T.analyze acyclic with
  | T.Safe _ -> ()
  | T.Unsafe _ -> Alcotest.fail "acyclic functor flow is safe"

(* ------------------------------------------------------------------ *)
(* Sample goldens through the kindlint pipeline *)

let read_sample name =
  let candidates =
    [
      Filename.concat "../samples" name;
      Filename.concat "samples" name;
      Filename.concat "../../samples" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.failf "sample %s not found from %s" name (Sys.getcwd ())
  | Some path ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    src

let lint_sample name =
  let parsed = Flogic.Fl_parser.parse_program_exn (read_sample name) in
  A.Kindlint.lint_program
    ~positions:parsed.Flogic.Fl_parser.rule_positions
    (Flogic.Fl_program.make ~signature:parsed.Flogic.Fl_parser.signature
       parsed.Flogic.Fl_parser.rules)

let contain_codes =
  [
    "unsatisfiable-body"; "implied-atom"; "rule-implied-by-rule";
    "possible-nontermination";
  ]

let broken_goldens () =
  let diags = lint_sample "broken.flp" in
  let hits code =
    List.filter_map
      (fun (d : D.t) ->
        match (d.D.code = code, d.D.location) with
        | true, D.Rule { text; _ } -> Some text
        | true, _ -> Some ""
        | _ -> None)
      diags
  in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "broken.flp trips %s" c)
        true
        (hits c <> []))
    contain_codes;
  let mentions code frag = List.exists (fun t -> contains_sub t frag) (hits code) in
  Alcotest.(check bool) "impossible is the unsatisfiable rule" true
    (mentions "unsatisfiable-body" "impossible");
  Alcotest.(check bool) "verbose carries the implied atom" true
    (mentions "implied-atom" "verbose");
  Alcotest.(check bool) "roomy is the implied rule" true
    (mentions "rule-implied-by-rule" "roomy")

let clean_goldens () =
  let diags = lint_sample "spines.flp" in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "spines.flp has no %s" c)
        false
        (List.exists (fun (d : D.t) -> d.D.code = c) diags))
    ("redundant-ivd" :: contain_codes)

(* ------------------------------------------------------------------ *)
(* (a) containment vs brute-force evaluation *)

let edb_preds = [ ("e0", 2); ("e1", 2); ("e2", 1) ]
let const st = s (Printf.sprintf "k%d" (Random.State.int st 4))
let pick st xs = List.nth xs (Random.State.int st (List.length xs))

let gen_cq st =
  let var_pool = [ "A"; "B"; "C" ] in
  let body =
    List.init
      (1 + Random.State.int st 3)
      (fun _ ->
        let name, ar = pick st edb_preds in
        Literal.pos name
          (List.init ar (fun _ ->
               if Random.State.int st 100 < 15 then const st
               else v (pick st var_pool))))
  in
  let bvars =
    List.sort_uniq compare (List.concat_map Literal.vars body)
  in
  let head_arg =
    if bvars <> [] && Random.State.int st 100 < 85 then v (pick st bvars)
    else const st
  in
  rule (Atom.make "q" [ head_arg ]) body

(* a rule guaranteed to be contained in [r]: same head, superset body *)
let specialize st (r : Rule.t) =
  let extra =
    let name, ar = pick st edb_preds in
    Literal.pos name
      (List.init ar (fun _ ->
           if Random.State.int st 100 < 50 then const st else v "A"))
  in
  Rule.make r.Rule.head (r.Rule.body @ [ extra ])

let gen_db st =
  Database.of_facts
    (List.concat_map
       (fun (name, ar) ->
         List.init
           (4 + Random.State.int st 8)
           (fun _ -> Atom.make name (List.init ar (fun _ -> const st))))
       edb_preds)

let eval_rule db (r : Rule.t) =
  Engine.query db r.Rule.body
  |> List.map (fun su -> List.map (Subst.apply su) r.Rule.head.Atom.args)
  |> List.sort_uniq compare

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let containment_vs_eval () =
  let positives = ref 0 in
  for i = 0 to cases - 1 do
    let st = Random.State.make [| (base_seed * 10_000) + i |] in
    let r1 =
      if Random.State.int st 100 < 40 then
        let r2 = gen_cq st in
        specialize st r2
      else gen_cq st
    in
    let r2 = gen_cq st in
    let pairs = [ (r1, r2); (r2, r1) ] in
    List.iter
      (fun (a, b) ->
        let c = C.contained C.empty_ctx a b in
        if c then incr positives;
        (* the retired syntactic oracle implies the semantic verdict *)
        if A.Rule_lint.subsumes ~general:b ~specific:a && not c then
          Alcotest.failf "seed %d: subsumes holds but contained refuses\n%s\n%s"
            i (Rule.to_string a) (Rule.to_string b);
        if c then
          for k = 0 to 2 do
            let db = gen_db (Random.State.make [| (i * 31) + k |]) in
            if not (subset (eval_rule db a) (eval_rule db b)) then
              Alcotest.failf
                "seed %d: contained but answers escape\n%s\n%s" i
                (Rule.to_string a) (Rule.to_string b)
          done)
      pairs
  done;
  Alcotest.(check bool) "containment fires on the generated pairs" true
    (!positives > 0)

(* ------------------------------------------------------------------ *)
(* (b) minimization is answer-invisible under every engine *)

let gen_program st =
  let idb = [ ("p0", 1); ("p1", 1) ] in
  let rule_for i (h, _) =
    let pos_pool = edb_preds @ List.filteri (fun j _ -> j <= i) idb in
    let var_pool = [ "A"; "B"; "C" ] in
    let body =
      List.init
        (2 + Random.State.int st 2)
        (fun _ ->
          let name, ar = pick st pos_pool in
          Literal.pos name
            (List.init ar (fun _ ->
                 if Random.State.int st 100 < 15 then const st
                 else v (pick st var_pool))))
    in
    (* seed redundancy: re-scan an atom with one variable made fresh,
       so containment has something real to remove *)
    let body =
      if Random.State.int st 100 < 60 then
        match body with
        | Literal.Pos a :: _ ->
          let widened =
            Atom.make a.Atom.pred
              (List.mapi
                 (fun k t -> if k = 0 then t else v "W")
                 a.Atom.args)
          in
          body @ [ Literal.Pos widened ]
        | _ -> body
      else body
    in
    let bvars = List.sort_uniq compare (List.concat_map Literal.vars body) in
    let head_arg =
      if bvars <> [] then v (List.hd bvars) else const st
    in
    Rule.make (Atom.make h [ head_arg ]) body
  in
  List.concat
    (List.mapi
       (fun i p -> List.init (1 + Random.State.int st 2) (fun _ -> rule_for i p))
       idb)

let facts_str db =
  List.sort compare (List.map Atom.to_string (Database.all_facts db))

let minimize_invisible () =
  let shrunk = ref 0 in
  for i = 0 to cases - 1 do
    let st = Random.State.make [| (base_seed * 10_000) + i |] in
    let rules = gen_program st in
    let p = Program.make_exn rules in
    let edb = gen_db st in
    let ctx = C.make_ctx ~rules () in
    let hook = C.minimize ctx in
    let body_atoms rs =
      List.fold_left (fun n (r : Rule.t) -> n + List.length r.Rule.body) 0 rs
    in
    if body_atoms (hook rules) < body_atoms rules then incr shrunk;
    let full = Engine.materialize p edb in
    let check what db =
      if facts_str db <> facts_str full then
        Alcotest.failf "seed %d: %s changed the model" i what
    in
    let rep = ref Engine.empty_report in
    check "semi-naive minimize"
      (Engine.materialize
         ~config:{ Engine.default_config with minimize = Some hook }
         ~report:rep p edb);
    if body_atoms (hook rules) < body_atoms rules then
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: atoms_minimized counted" i)
        true
        (!rep.Engine.atoms_minimized > 0);
    check "naive minimize"
      (Engine.materialize
         ~config:
           {
             Engine.default_config with
             strategy = Engine.Naive;
             minimize = Some hook;
           }
         p edb);
    match Maintain.init ~minimize:hook p edb with
    | Error e -> Alcotest.failf "seed %d: Maintain.init: %s" i e
    | Ok h ->
      check "maintain minimize" (Maintain.db h);
      (* the minimized rules stay correct under deltas *)
      let extra =
        List.init 3 (fun k ->
            Atom.make "e2" [ s (Printf.sprintf "k%d" k) ])
      in
      (match Maintain.apply h (Maintain.delta ~additions:extra ()) with
      | Error e -> Alcotest.failf "seed %d: apply: %s" i e
      | Ok _ -> ());
      let edb' = Database.copy edb in
      List.iter (fun f -> ignore (Database.add_fact edb' f)) extra;
      if facts_str (Maintain.db h) <> facts_str (Engine.materialize p edb')
      then Alcotest.failf "seed %d: minimized delta diverged" i
  done;
  Alcotest.(check bool) "minimization fires on the generated programs" true
    (!shrunk > 0)

(* ------------------------------------------------------------------ *)
(* (c) termination-accepted programs reach their fixpoint *)

let gen_term_program st =
  let n = 4 in
  let pred i = Printf.sprintf "t%d" i in
  let wrap st t =
    if Random.State.int st 100 < 35 then
      Term.app (pick st [ "f"; "g" ]) [ t ]
    else t
  in
  let rules =
    List.init
      (3 + Random.State.int st 4)
      (fun _ ->
        let i = Random.State.int st n in
        let j = Random.State.int st n in
        (* forward edges may invent values; back edges close cycles and
           sometimes (the interesting, unsafe case) carry a functor *)
        let head_t =
          if j >= i then wrap st (v "X")
          else if Random.State.int st 100 < 20 then
            Term.app "f" [ v "X" ]
          else v "X"
        in
        rule (Atom.make (pred j) [ head_t ]) [ Literal.pos (pred i) [ v "X" ] ])
  in
  rule (Atom.make (pred 0) [ v "X" ]) [ Literal.pos "seed" [ v "X" ] ] :: rules

let termination_sound () =
  let safe_n = ref 0 and unsafe_n = ref 0 in
  for i = 0 to cases - 1 do
    let st = Random.State.make [| (base_seed * 10_000) + i |] in
    let rules = gen_term_program st in
    match T.analyze rules with
    | T.Unsafe _ -> incr unsafe_n
    | T.Safe _ ->
      incr safe_n;
      let p = Program.make_exn rules in
      let edb =
        Database.of_facts
          (List.init 4 (fun k -> Atom.make "seed" [ s (Printf.sprintf "k%d" k) ]))
      in
      let rep = ref Engine.empty_report in
      let config = { Engine.default_config with max_term_depth = 48 } in
      ignore (Engine.materialize ~config ~report:rep p edb);
      if !rep.Engine.skolems_suppressed > 0 then
        Alcotest.failf
          "seed %d: accepted program hit the term-depth guard\n%s" i
          (String.concat "\n" (List.map Rule.to_string rules))
  done;
  Alcotest.(check bool) "the analysis accepts some programs" true (!safe_n > 0);
  Alcotest.(check bool) "the analysis rejects some programs" true
    (!unsafe_n > 0)

(* ------------------------------------------------------------------ *)
(* Mediator: redundant IVDs warned about at installation *)

let redundant_ivd () =
  let dm = Domain_map.Dmap.isa Domain_map.Dmap.empty "spine" "component" in
  let med = Mediation.Mediator.create dm in
  (match Mediation.Mediator.add_ivd_text med "v(X) :- X : spine." with
  | Ok () -> ()
  | Error e -> Alcotest.failf "first view: %s" e);
  (match
     Mediation.Mediator.add_ivd_text med
       "v(X) :- X : spine, X : component."
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "second view: %s" e);
  let warned frag =
    List.exists
      (fun w -> contains_sub w frag)
      (Mediation.Mediator.translation_warnings med)
  in
  Alcotest.(check bool) "redundant-ivd warned" true (warned "redundant-ivd");
  (* the federation lint reports it too, against the earlier views *)
  let diags = Mediation.Lint.federation med in
  Alcotest.(check bool) "federation flags redundant-ivd" true
    (with_code "redundant-ivd" diags <> [])

(* a genuinely new view stays silent *)
let non_redundant_ivd () =
  let dm = Domain_map.Dmap.isa Domain_map.Dmap.empty "spine" "component" in
  let med = Mediation.Mediator.create dm in
  (match Mediation.Mediator.add_ivd_text med "v(X) :- X : spine." with
  | Ok () -> ()
  | Error e -> Alcotest.failf "first view: %s" e);
  (match Mediation.Mediator.add_ivd_text med "w(X) :- X : component." with
  | Ok () -> ()
  | Error e -> Alcotest.failf "second view: %s" e);
  let warned =
    List.exists
      (fun w -> contains_sub w "redundant-ivd")
      (Mediation.Mediator.translation_warnings med)
  in
  Alcotest.(check bool) "independent views stay silent" false warned

(* ------------------------------------------------------------------ *)
(* SARIF rendering carries the new passes *)

let sarif_render () =
  let d1 =
    D.make ~severity:D.Warning ~pass:"contain" ~code:"unsatisfiable-body"
      ~location:
        (D.Rule { index = 0; text = "q(X) :- e(X)."; pos = Some (3, 1) })
      "never fires"
  in
  let d2 =
    D.make ~severity:D.Error ~pass:"termination" ~code:"possible-nontermination"
      ~location:D.Federation "cycle"
  in
  let out = D.list_to_sarif [ (Some "samples/broken.flp", [ d1; d2 ]) ] in
  let has frag = contains_sub out frag in
  Alcotest.(check bool) "sarif version" true (has "\"2.1.0\"");
  Alcotest.(check bool) "contain rule id" true
    (has "contain/unsatisfiable-body");
  Alcotest.(check bool) "termination rule id" true
    (has "termination/possible-nontermination");
  Alcotest.(check bool) "error level" true (has "\"level\":\"error\"");
  Alcotest.(check bool) "location uri" true (has "samples/broken.flp");
  Alcotest.(check bool) "start line" true (has "\"startLine\":3")

let suites =
  [
    ( "contain",
      [
        Alcotest.test_case "directed containment verdicts" `Quick test_directed;
        Alcotest.test_case "chase modulo the domain map" `Quick
          test_chase_modulo_dm;
        Alcotest.test_case "unsatisfiable bodies" `Quick test_unsatisfiable;
        Alcotest.test_case "directed termination verdicts" `Quick
          test_terminate_directed;
        Alcotest.test_case "broken.flp containment goldens" `Quick
          broken_goldens;
        Alcotest.test_case "spines.flp stays contain-clean" `Quick
          clean_goldens;
        Alcotest.test_case
          (Printf.sprintf "%d random pairs: contained ⟹ answers subset" cases)
          `Quick containment_vs_eval;
        Alcotest.test_case
          (Printf.sprintf "%d random programs: minimization invisible" cases)
          `Quick minimize_invisible;
        Alcotest.test_case
          (Printf.sprintf "%d random programs: accepted ⟹ fixpoint" cases)
          `Quick termination_sound;
        Alcotest.test_case "mediator warns on redundant IVD" `Quick
          redundant_ivd;
        Alcotest.test_case "independent IVDs stay silent" `Quick
          non_redundant_ivd;
        Alcotest.test_case "SARIF rendering" `Quick sarif_render;
      ] );
  ]
