(* Tests for the conjunctive-query planner and the materialized
   protein_distribution view. *)

open Mediation
module Molecule = Flogic.Molecule
module Source = Wrapper.Source

let v = Logic.Term.var
let s = Logic.Term.sym

let params = { Neuro.Sources.seed = 11; Neuro.Sources.scale = 25 }

let med () = Neuro.Sources.standard_mediator params

let run_ok med lits =
  match Conjunctive.run med lits with
  | Ok (answers, report) -> (answers, report)
  | Error e -> Alcotest.failf "planner failed: %s" e

(* -------------------------------------------------------------------- *)

let test_source_qualified () =
  let m = med () in
  let answers, report =
    run_ok m
      [
        Molecule.Pos (Molecule.Isa (v "X", s "SENSELAB.neurotransmission"));
        Molecule.Pos (Molecule.Meth_val (v "X", "organism", Logic.Term.str "rat"));
      ]
  in
  Alcotest.(check bool) "answers exist" true (answers <> []);
  Alcotest.(check (list string)) "only SENSELAB touched" [ "SENSELAB" ]
    report.Conjunctive.sources_contacted

let test_concept_level () =
  (* X : spine — without naming a source; resolved through the index. *)
  let m = med () in
  let answers, report =
    run_ok m [ Molecule.Pos (Molecule.Isa (v "X", s "spine")) ]
  in
  Alcotest.(check bool) "spine data found" true (answers <> []);
  Alcotest.(check bool) "SYNAPSE among the targets" true
    (List.mem "SYNAPSE" report.Conjunctive.sources_contacted)

let test_bind_join_pushdown () =
  (* the constant from the first group becomes a pushed selection for
     the second *)
  let m = med () in
  let lits =
    [
      Molecule.Pos (Molecule.Isa (v "N", s "SENSELAB.neurotransmission"));
      Molecule.Pos (Molecule.Meth_val (v "N", "organism", Logic.Term.str "rat"));
      Molecule.Pos (Molecule.Meth_val (v "N", "receiving_compartment", v "C"));
      Molecule.Pos (Molecule.Isa (v "A", s "NCMIR.protein_amount"));
      Molecule.Pos (Molecule.Meth_val (v "A", "location", v "C"));
      Molecule.Pos (Molecule.Meth_val (v "A", "protein_name", v "P"));
    ]
  in
  let answers, report = run_ok m lits in
  Alcotest.(check bool) "join produced rows" true (answers <> []);
  (* turning pushdown off moves more tuples for the same answers *)
  Mediator.set_config m { (Mediator.config m) with Mediator.pushdown = false };
  let answers2, report2 = run_ok m lits in
  Alcotest.(check int) "same answers" (List.length answers) (List.length answers2);
  Alcotest.(check bool)
    (Printf.sprintf "pushdown ships fewer tuples (%d <= %d)"
       report.Conjunctive.tuples_moved report2.Conjunctive.tuples_moved)
    true
    (report.Conjunctive.tuples_moved <= report2.Conjunctive.tuples_moved)

let test_comparisons () =
  let m = med () in
  let base =
    [
      Molecule.Pos (Molecule.Isa (v "X", s "SYNAPSE.spine_measure"));
      Molecule.Pos (Molecule.Meth_val (v "X", "diameter", v "D"));
    ]
  in
  let all, _ = run_ok m base in
  let wide, _ =
    run_ok m (base @ [ Molecule.Cmp (Logic.Literal.Gt, v "D", Logic.Term.float 0.6) ])
  in
  Alcotest.(check bool) "filter reduces" true
    (List.length wide < List.length all && wide <> [])

let test_dm_tests () =
  let m = med () in
  (* enumerate DM pairs and also test filtering with one side bound *)
  let answers, _ =
    run_ok m
      [
        Molecule.Pos
          (Molecule.Pred (Logic.Atom.make "tc_isa" [ s "purkinje_cell"; v "Up" ]));
      ]
  in
  let ups =
    List.filter_map
      (fun sub -> Logic.Term.as_sym (Logic.Subst.apply sub (v "Up")))
      answers
  in
  Alcotest.(check bool) "neuron among ancestors" true (List.mem "neuron" ups);
  let yes, _ =
    run_ok m
      [
        Molecule.Pos
          (Molecule.Pred (Logic.Atom.make "has_a_star" [ s "dendrite"; s "branch" ]));
      ]
  in
  Alcotest.(check int) "ground test succeeds" 1 (List.length yes)

let test_unplannable () =
  let m = med () in
  (match Conjunctive.run m [ Molecule.Neg (Molecule.Isa (v "X", s "spine")) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negation must be refused");
  (match
     Conjunctive.run m [ Molecule.Pos (Molecule.Meth_val (v "X", "m", v "V")) ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "method access without class must be refused");
  match Conjunctive.run m [ Molecule.Pos (Molecule.Isa (v "X", s "NOPE.cls")) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown source must be refused"

let test_plan_inspection () =
  let m = med () in
  match
    Conjunctive.plan m
      [
        Molecule.Pos (Molecule.Isa (v "X", s "NCMIR.protein_amount"));
        Molecule.Pos (Molecule.Meth_val (v "X", "location", s "spine"));
      ]
  with
  | Ok [ step ] ->
    Alcotest.(check (list string)) "selection pushed" [ "location" ]
      step.Conjunctive.pushed
  | Ok _ -> Alcotest.fail "one step expected"
  | Error e -> Alcotest.failf "plan failed: %s" e

let test_run_text () =
  let m = med () in
  match
    Conjunctive.run_text m
      "?- X : 'SYNAPSE.spine_measure', X[diameter ->> D], D > 0.6."
  with
  | Ok (answers, _) -> Alcotest.(check bool) "text query works" true (answers <> [])
  | Error e -> Alcotest.failf "run_text failed: %s" e

(* -------------------------------------------------------------------- *)
(* Ivd: the materialized protein_distribution class *)

let test_ivd_materialize () =
  let m = med () in
  (match
     Ivd.materialize_distributions m ~organism:"rat" ~ion:"calcium"
       ~root:"cerebellum"
   with
  | Ok n ->
    Alcotest.(check int) "one instance per calcium binder"
      (List.length Neuro.Sources.calcium_binders)
      n
  | Error e -> Alcotest.failf "materialize failed: %s" e);
  (* the mediated class is queryable in FL *)
  let answers =
    Mediator.query m
      [
        Molecule.Pos (Molecule.Isa (v "D", s Ivd.class_name));
        Molecule.Pos (Molecule.Meth_val (v "D", "protein_name", v "P"));
      ]
  in
  Alcotest.(check int) "instances queryable"
    (List.length Neuro.Sources.calcium_binders)
    (List.length answers);
  (* per-level rows exist and carry mass *)
  let levels =
    Mediator.query m
      [
        Molecule.Pos
          (Molecule.Pred (Logic.Atom.make "pd_level" [ v "D"; s "spine"; v "A" ]));
      ]
  in
  Alcotest.(check bool) "spine levels present" true (levels <> [])

let test_ivd_answer_query () =
  let m = med () in
  match
    Ivd.answer_query m ~organism:"rat"
      ~transmitting_compartment:"parallel_fiber" ~ion:"calcium"
  with
  | Ok answers ->
    let proteins =
      List.filter_map
        (fun sub -> Logic.Term.as_sym (Logic.Subst.apply sub (v "P")))
        answers
      |> List.sort_uniq String.compare
    in
    Alcotest.(check (list string)) "the paper's answer(P, D)"
      (List.sort String.compare Neuro.Sources.calcium_binders)
      proteins
  | Error e -> Alcotest.failf "answer_query failed: %s" e

let test_ivd_no_data () =
  let m = med () in
  match
    Ivd.materialize_distributions m ~organism:"rat" ~ion:"plutonium"
      ~root:"cerebellum"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown ion must fail"

let suites =
  [
    ( "planner.conjunctive",
      [
        Alcotest.test_case "source-qualified" `Quick test_source_qualified;
        Alcotest.test_case "concept-level" `Quick test_concept_level;
        Alcotest.test_case "bind-join pushdown" `Quick test_bind_join_pushdown;
        Alcotest.test_case "comparisons" `Quick test_comparisons;
        Alcotest.test_case "domain-map tests" `Quick test_dm_tests;
        Alcotest.test_case "unplannable fragment" `Quick test_unplannable;
        Alcotest.test_case "plan inspection" `Quick test_plan_inspection;
        Alcotest.test_case "text interface" `Quick test_run_text;
      ] );
    ( "planner.ivd",
      [
        Alcotest.test_case "materialize view" `Quick test_ivd_materialize;
        Alcotest.test_case "paper's answer(P,D)" `Quick test_ivd_answer_query;
        Alcotest.test_case "no data" `Quick test_ivd_no_data;
      ] );
  ]
