(* Tests for tabled top-down evaluation: agreement with bottom-up
   materialization, goal-directedness, negation, and the fragment
   guards. *)

open Logic
open Datalog

let v = Term.var
let s = Term.sym
let atom p args = Atom.make p args
let rule h b = Rule.make h b
let fact p args = Rule.fact (atom p args)

let tc_rules =
  [
    rule (atom "tc" [ v "X"; v "Y" ]) [ Literal.pos "edge" [ v "X"; v "Y" ] ];
    rule
      (atom "tc" [ v "X"; v "Y" ])
      [ Literal.pos "edge" [ v "X"; v "Z" ]; Literal.pos "tc" [ v "Z"; v "Y" ] ];
  ]

let chain_edges n =
  List.init n (fun k ->
      fact "edge" [ s (Printf.sprintf "n%d" k); s (Printf.sprintf "n%d" (k + 1)) ])

(* two disconnected chains: queries about one must not explore the other *)
let two_islands n =
  chain_edges n
  @ List.init n (fun k ->
        fact "edge" [ s (Printf.sprintf "m%d" k); s (Printf.sprintf "m%d" (k + 1)) ])

let test_agrees_with_bottom_up () =
  let p = Program.make_exn (tc_rules @ chain_edges 12) in
  let db = Engine.materialize p (Datalog.Database.create ()) in
  let bottom_up =
    Engine.answers db (atom "tc" [ v "X"; v "Y" ]) |> List.sort Tuple.compare
  in
  let top_down = Topdown.solve p (Database.create ()) (atom "tc" [ v "X"; v "Y" ]) in
  Alcotest.(check int) "same count" (List.length bottom_up) (List.length top_down);
  Alcotest.(check bool) "same content" true (bottom_up = top_down)

let test_bound_goal () =
  let p = Program.make_exn (tc_rules @ chain_edges 8) in
  let from_n3 = Topdown.solve p (Database.create ()) (atom "tc" [ s "n3"; v "Y" ]) in
  Alcotest.(check int) "n4..n8 reachable from n3" 5 (List.length from_n3);
  let exact = Topdown.solve p (Database.create ()) (atom "tc" [ s "n0"; s "n8" ]) in
  Alcotest.(check int) "ground goal" 1 (List.length exact);
  let miss = Topdown.solve p (Database.create ()) (atom "tc" [ s "n8"; s "n0" ]) in
  Alcotest.(check int) "unreachable" 0 (List.length miss)

let test_goal_directedness () =
  (* on two islands, a bound goal must not derive answers about the
     other island: compare tabled answers, not just the result *)
  let p = Program.make_exn (tc_rules @ two_islands 30) in
  let stats = Topdown.new_stats () in
  ignore (Topdown.solve ~stats p (Database.create ()) (atom "tc" [ s "n0"; v "Y" ]));
  let full_stats = Topdown.new_stats () in
  ignore
    (Topdown.solve ~stats:full_stats p (Database.create ())
       (atom "tc" [ v "X"; v "Y" ]));
  Alcotest.(check bool)
    (Printf.sprintf "bound call stores fewer answers (%d < %d)"
       stats.Topdown.answers full_stats.Topdown.answers)
    true
    (stats.Topdown.answers < full_stats.Topdown.answers)

let test_negation () =
  let rules =
    tc_rules
    @ [
        rule (atom "node" [ v "X" ]) [ Literal.pos "edge" [ v "X"; v "Y" ] ];
        rule (atom "node" [ v "Y" ]) [ Literal.pos "edge" [ v "X"; v "Y" ] ];
        rule
          (atom "sink" [ v "X" ])
          [ Literal.pos "node" [ v "X" ]; Literal.neg "has_out" [ v "X" ] ];
        rule (atom "has_out" [ v "X" ]) [ Literal.pos "edge" [ v "X"; v "Y" ] ];
      ]
    @ chain_edges 5
  in
  let p = Program.make_exn rules in
  let sinks = Topdown.solve p (Database.create ()) (atom "sink" [ v "X" ]) in
  Alcotest.(check int) "one sink" 1 (List.length sinks);
  Alcotest.(check bool) "n5 is the sink" true (sinks = [ [ s "n5" ] ])

let test_arith_and_builtin () =
  let rules =
    [
      fact "n" [ Term.int 3 ];
      rule
        (atom "double" [ v "Y" ])
        [
          Literal.pos "n" [ v "X" ];
          Literal.assign (v "Y")
            (Literal.Bin (Literal.Mul, Literal.Leaf (v "X"), Literal.Leaf (Term.int 2)));
        ];
    ]
  in
  let p = Program.make_exn rules in
  Alcotest.(check bool) "arith in top-down" true
    (Topdown.solve p (Database.create ()) (atom "double" [ v "Y" ])
    = [ [ Term.int 6 ] ])

let test_unsupported () =
  let agg =
    Program.make_exn
      [
        fact "r" [ s "a" ];
        rule (atom "c" [ v "N" ])
          [
            Literal.count ~target:(v "X") ~group_by:[] ~result:(v "N")
              [ atom "r" [ v "X" ] ];
          ];
      ]
  in
  (match Topdown.solve agg (Database.create ()) (atom "c" [ v "N" ]) with
  | exception Topdown.Unsupported _ -> ()
  | _ -> Alcotest.fail "aggregates must be refused");
  let skolem =
    Program.make_exn
      [
        fact "p" [ s "a" ];
        rule (atom "p" [ Term.app "f" [ v "X" ] ]) [ Literal.pos "p" [ v "X" ] ];
      ]
  in
  (match Topdown.solve skolem (Database.create ()) (atom "p" [ v "X" ]) with
  | exception Topdown.Unsupported _ -> ()
  | _ -> Alcotest.fail "head function symbols must be refused");
  let unstrat =
    Program.make_exn
      [
        fact "u" [ s "a" ];
        rule (atom "p" [ v "X" ]) [ Literal.pos "u" [ v "X" ]; Literal.neg "q" [ v "X" ] ];
        rule (atom "q" [ v "X" ]) [ Literal.pos "u" [ v "X" ]; Literal.neg "p" [ v "X" ] ];
      ]
  in
  match Topdown.solve unstrat (Database.create ()) (atom "p" [ v "X" ]) with
  | exception Topdown.Unsupported _ -> ()
  | _ -> Alcotest.fail "unstratified negation must be refused"

let test_edb_goal () =
  let p = Program.make_exn (chain_edges 3) in
  Alcotest.(check int) "extensional goal" 3
    (List.length (Topdown.solve p (Database.create ()) (atom "edge" [ v "X"; v "Y" ])))

let test_solve_many_shares_tables () =
  let p = Program.make_exn (tc_rules @ chain_edges 10) in
  let stats = Topdown.new_stats () in
  let results =
    Topdown.solve_many ~stats p (Database.create ())
      [ atom "tc" [ s "n0"; v "Y" ]; atom "tc" [ s "n0"; s "n5" ] ]
  in
  (match results with
  | [ all; one ] ->
    Alcotest.(check int) "first goal" 10 (List.length all);
    Alcotest.(check int) "second goal" 1 (List.length one)
  | _ -> Alcotest.fail "two results expected");
  ()

(* Property: top-down and bottom-up agree on random tc graphs with a
   bound first argument. *)
let prop_topdown_agrees =
  QCheck.Test.make ~name:"top-down = bottom-up on bound tc goals" ~count:40
    QCheck.(list_of_size Gen.(int_bound 25) (pair (int_bound 8) (int_bound 8)))
    (fun pairs ->
      let edges =
        List.map
          (fun (a, b) ->
            fact "edge" [ s (Printf.sprintf "v%d" a); s (Printf.sprintf "v%d" b) ])
          pairs
      in
      let p = Program.make_exn (tc_rules @ edges) in
      let goal = atom "tc" [ s "v0"; v "Y" ] in
      let db = Engine.materialize p (Datalog.Database.create ()) in
      let bu = Engine.answers db goal |> List.sort Tuple.compare in
      let td = Topdown.solve p (Database.create ()) goal in
      bu = td)

let suites =
  [
    ( "datalog.topdown",
      [
        Alcotest.test_case "agrees with bottom-up" `Quick test_agrees_with_bottom_up;
        Alcotest.test_case "bound goals" `Quick test_bound_goal;
        Alcotest.test_case "goal-directedness" `Quick test_goal_directedness;
        Alcotest.test_case "stratified negation" `Quick test_negation;
        Alcotest.test_case "arithmetic" `Quick test_arith_and_builtin;
        Alcotest.test_case "unsupported fragments" `Quick test_unsupported;
        Alcotest.test_case "extensional goals" `Quick test_edb_goal;
        Alcotest.test_case "shared tables" `Quick test_solve_many_shares_tables;
        QCheck_alcotest.to_alcotest prop_topdown_agrees;
      ] );
  ]
