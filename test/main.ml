let () =
  Alcotest.run "kind"
    (Test_logic.suites @ Test_datalog.suites @ Test_flogic.suites
   @ Test_gcm.suites @ Test_dl.suites @ Test_domain_map.suites
   @ Test_xmlkit.suites @ Test_plugins.suites @ Test_wrapper.suites
   @ Test_mediator.suites @ Test_planner.suites @ Test_neuro.suites
   @ Test_topdown.suites @ Test_robustness.suites @ Test_aggregate_ops.suites
   @ Test_transform.suites @ Test_extensions.suites @ Test_protocol.suites @ Test_misc.suites @ Test_provenance.suites @ Test_properties.suites @ Test_differential.suites @ Test_parthood.suites @ Test_analysis.suites @ Test_absint.suites @ Test_contain.suites @ Test_parallel.suites
   @ Test_cost.suites @ Test_faults.suites @ Test_xmlfuzz.suites
   @ Test_recovery.suites @ Test_final.suites)
