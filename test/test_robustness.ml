(* Robustness tests: parser fuzzing (never crash, always Ok/Error),
   engine failure injection (divergence guards, depth bounds), and
   wire-format adversarial inputs. *)

open Logic
open Flogic

(* -------------------------------------------------------------------- *)
(* Parser fuzzing: random token soup must yield Ok or Error, never an
   unexpected exception. *)

let token_soup =
  let open QCheck.Gen in
  let word =
    oneofl
      [
        "p"; "q"; "X"; "Y"; "spine"; "42"; "3.14"; ":-"; "?-"; "."; ","; "(";
        ")"; "["; "]"; "{"; "}"; ":"; "::"; "->"; "->>"; "=>"; "not"; "is";
        "<"; ">"; "="; "=/="; "count"; ";"; "&"; "'quoted atom'"; "\"str\"";
        "%comment"; "+"; "*";
      ]
  in
  map (String.concat " ") (list_size (int_bound 40) word)

let prop_parser_total =
  QCheck.Test.make ~name:"parser totality on token soup" ~count:500
    (QCheck.make ~print:(fun s -> s) token_soup)
    (fun src ->
      match Fl_parser.parse_program src with
      | Ok _ | Error _ -> true)

let char_soup =
  QCheck.Gen.(map (String.concat "") (list_size (int_bound 60) (map (String.make 1) printable)))

let prop_parser_total_chars =
  QCheck.Test.make ~name:"parser totality on char soup" ~count:500
    (QCheck.make ~print:(fun s -> s) char_soup)
    (fun src ->
      match Fl_parser.parse_program src with
      | Ok _ | Error _ -> true)

let prop_xml_parser_total =
  QCheck.Test.make ~name:"xml parser totality" ~count:500
    (QCheck.make ~print:(fun s -> s)
       QCheck.Gen.(
         map (String.concat "")
           (list_size (int_bound 40)
              (oneofl [ "<"; ">"; "/"; "a"; "b"; "="; "\""; " "; "&"; "amp;"; "!"; "-" ]))))
    (fun src ->
      match Xmlkit.Parse.parse src with Ok _ | Error _ -> true)

(* Parse-print-parse stability on valid programs. *)
let prop_fl_reparse =
  let program =
    QCheck.Gen.oneofl
      [
        "a :: b. x : a.";
        "p(X) :- X : a, X[m ->> V], V > 3.";
        "w(X) : ic :- X : c, not r(X, X).";
        "big(B, N) :- N = count{X [B]; r(X, B)}, N >= 2.";
        "d(Y) :- v(X), Y is X * 2 + 1.";
      ]
  in
  QCheck.Test.make ~name:"parse-print-parse stability" ~count:50
    (QCheck.make ~print:(fun s -> s) program)
    (fun src ->
      match Fl_parser.parse_program src with
      | Error _ -> false
      | Ok p1 -> (
        let printed =
          String.concat "\n"
            (List.map Molecule.rule_to_string p1.Fl_parser.rules)
        in
        match Fl_parser.parse_program printed with
        | Error _ -> false
        | Ok p2 ->
          List.map Molecule.rule_to_string p2.Fl_parser.rules
          = List.map Molecule.rule_to_string p1.Fl_parser.rules))

(* -------------------------------------------------------------------- *)
(* Engine failure injection *)

let v = Term.var
let s = Term.sym

let test_max_rounds_guard () =
  (* a diverging skolem chain with a huge depth bound must hit the
     rounds guard instead of spinning forever *)
  let p =
    Datalog.Program.make_exn
      [
        Rule.fact (Atom.make "p" [ s "a" ]);
        Rule.make
          (Atom.make "p" [ Term.app "f" [ v "X" ] ])
          [ Literal.pos "p" [ v "X" ] ];
      ]
  in
  match
    Datalog.Engine.materialize
      ~config:
        {
          Datalog.Engine.default_config with
          Datalog.Engine.max_term_depth = 1_000_000;
          max_rounds = 20;
        }
      p (Datalog.Database.create ())
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected rounds guard to fire"

let test_depth_bound_tightness () =
  (* depth bound k keeps exactly the terms of depth <= k *)
  let p =
    Datalog.Program.make_exn
      [
        Rule.fact (Atom.make "p" [ s "a" ]);
        Rule.make
          (Atom.make "p" [ Term.app "f" [ v "X" ] ])
          [ Literal.pos "p" [ v "X" ] ];
      ]
  in
  List.iter
    (fun k ->
      let db =
        Datalog.Engine.materialize
          ~config:{ Datalog.Engine.default_config with Datalog.Engine.max_term_depth = k }
          p (Datalog.Database.create ())
      in
      Alcotest.(check int) (Printf.sprintf "depth %d" k) k
        (Datalog.Database.count db "p"))
    [ 1; 3; 6 ]

let test_unsafe_rule_rejected () =
  (match Datalog.Program.make [ Rule.make (Atom.make "p" [ v "X" ]) [] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbound head var accepted");
  match
    Datalog.Program.make
      [ Rule.make (Atom.make "p" [ v "X" ]) [ Literal.cmp Literal.Eq (v "X") (v "Y") ] ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "floating equality accepted"

let contains_substring haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= hn && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_fl_compile_error_surfaces () =
  let t =
    Fl_program.make
      [ Molecule.rule (Molecule.Rel_val ("nope", [ ("a", s "x") ])) [] ]
  in
  match Fl_program.compile t with
  | Error e ->
    Alcotest.(check bool) "mentions relation" true (contains_substring e "nope")
  | Ok _ -> Alcotest.fail "undeclared relation accepted"

let suites =
  [
    ( "robustness.parsers",
      [
        QCheck_alcotest.to_alcotest prop_parser_total;
        QCheck_alcotest.to_alcotest prop_parser_total_chars;
        QCheck_alcotest.to_alcotest prop_xml_parser_total;
        QCheck_alcotest.to_alcotest prop_fl_reparse;
      ] );
    ( "robustness.engine",
      [
        Alcotest.test_case "rounds guard" `Quick test_max_rounds_guard;
        Alcotest.test_case "depth bound tight" `Quick test_depth_bound_tightness;
        Alcotest.test_case "unsafe rules rejected" `Quick test_unsafe_rule_rejected;
        Alcotest.test_case "compile errors surface" `Quick test_fl_compile_error_surfaces;
      ] );
  ]
