(* Robustness tests: parser fuzzing (never crash, always Ok/Error),
   engine failure injection (divergence guards, depth bounds), and
   wire-format adversarial inputs. *)

open Logic
open Flogic

(* -------------------------------------------------------------------- *)
(* Parser fuzzing: random token soup must yield Ok or Error, never an
   unexpected exception. *)

let token_soup =
  let open QCheck.Gen in
  let word =
    oneofl
      [
        "p"; "q"; "X"; "Y"; "spine"; "42"; "3.14"; ":-"; "?-"; "."; ","; "(";
        ")"; "["; "]"; "{"; "}"; ":"; "::"; "->"; "->>"; "=>"; "not"; "is";
        "<"; ">"; "="; "=/="; "count"; ";"; "&"; "'quoted atom'"; "\"str\"";
        "%comment"; "+"; "*";
      ]
  in
  map (String.concat " ") (list_size (int_bound 40) word)

let prop_parser_total =
  QCheck.Test.make ~name:"parser totality on token soup" ~count:500
    (QCheck.make ~print:(fun s -> s) token_soup)
    (fun src ->
      match Fl_parser.parse_program src with
      | Ok _ | Error _ -> true)

let char_soup =
  QCheck.Gen.(map (String.concat "") (list_size (int_bound 60) (map (String.make 1) printable)))

let prop_parser_total_chars =
  QCheck.Test.make ~name:"parser totality on char soup" ~count:500
    (QCheck.make ~print:(fun s -> s) char_soup)
    (fun src ->
      match Fl_parser.parse_program src with
      | Ok _ | Error _ -> true)

let prop_xml_parser_total =
  QCheck.Test.make ~name:"xml parser totality" ~count:500
    (QCheck.make ~print:(fun s -> s)
       QCheck.Gen.(
         map (String.concat "")
           (list_size (int_bound 40)
              (oneofl [ "<"; ">"; "/"; "a"; "b"; "="; "\""; " "; "&"; "amp;"; "!"; "-" ]))))
    (fun src ->
      match Xmlkit.Parse.parse src with Ok _ | Error _ -> true)

(* Parse-print-parse stability on valid programs. *)
let prop_fl_reparse =
  let program =
    QCheck.Gen.oneofl
      [
        "a :: b. x : a.";
        "p(X) :- X : a, X[m ->> V], V > 3.";
        "w(X) : ic :- X : c, not r(X, X).";
        "big(B, N) :- N = count{X [B]; r(X, B)}, N >= 2.";
        "d(Y) :- v(X), Y is X * 2 + 1.";
      ]
  in
  QCheck.Test.make ~name:"parse-print-parse stability" ~count:50
    (QCheck.make ~print:(fun s -> s) program)
    (fun src ->
      match Fl_parser.parse_program src with
      | Error _ -> false
      | Ok p1 -> (
        let printed =
          String.concat "\n"
            (List.map Molecule.rule_to_string p1.Fl_parser.rules)
        in
        match Fl_parser.parse_program printed with
        | Error _ -> false
        | Ok p2 ->
          List.map Molecule.rule_to_string p2.Fl_parser.rules
          = List.map Molecule.rule_to_string p1.Fl_parser.rules))

(* -------------------------------------------------------------------- *)
(* Engine failure injection *)

let v = Term.var
let s = Term.sym

let test_max_rounds_guard () =
  (* a diverging skolem chain with a huge depth bound must hit the
     rounds guard instead of spinning forever *)
  let p =
    Datalog.Program.make_exn
      [
        Rule.fact (Atom.make "p" [ s "a" ]);
        Rule.make
          (Atom.make "p" [ Term.app "f" [ v "X" ] ])
          [ Literal.pos "p" [ v "X" ] ];
      ]
  in
  match
    Datalog.Engine.materialize
      ~config:
        {
          Datalog.Engine.default_config with
          Datalog.Engine.max_term_depth = 1_000_000;
          max_rounds = 20;
        }
      p (Datalog.Database.create ())
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected rounds guard to fire"

let test_depth_bound_tightness () =
  (* depth bound k keeps exactly the terms of depth <= k *)
  let p =
    Datalog.Program.make_exn
      [
        Rule.fact (Atom.make "p" [ s "a" ]);
        Rule.make
          (Atom.make "p" [ Term.app "f" [ v "X" ] ])
          [ Literal.pos "p" [ v "X" ] ];
      ]
  in
  List.iter
    (fun k ->
      let db =
        Datalog.Engine.materialize
          ~config:{ Datalog.Engine.default_config with Datalog.Engine.max_term_depth = k }
          p (Datalog.Database.create ())
      in
      Alcotest.(check int) (Printf.sprintf "depth %d" k) k
        (Datalog.Database.count db "p"))
    [ 1; 3; 6 ]

let test_unsafe_rule_rejected () =
  (match Datalog.Program.make [ Rule.make (Atom.make "p" [ v "X" ]) [] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbound head var accepted");
  match
    Datalog.Program.make
      [ Rule.make (Atom.make "p" [ v "X" ]) [ Literal.cmp Literal.Eq (v "X") (v "Y") ] ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "floating equality accepted"

let contains_substring haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= hn && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_fl_compile_error_surfaces () =
  let t =
    Fl_program.make
      [ Molecule.rule (Molecule.Rel_val ("nope", [ ("a", s "x") ])) [] ]
  in
  match Fl_program.compile t with
  | Error e ->
    Alcotest.(check bool) "mentions relation" true (contains_substring e "nope")
  | Ok _ -> Alcotest.fail "undeclared relation accepted"

(* -------------------------------------------------------------------- *)
(* Breaker transitions under a scripted outage: the golden transcript.
   Everything below is virtual time, so the trace is exact: three
   exhausted fetches (3 calls + 50 + 100 ms backoff = 153 ms each) trip
   the breaker at t=459; riding out the 1000 ms cooldown lands the
   half-open probe at t=1460; its success closes at t=1461. *)

let test_breaker_golden_transcript () =
  let module F = Wrapper.Fault in
  let module R = Mediation.Runtime in
  let schema =
    Gcm.Schema.make ~name:"FRAGILE"
      ~classes:[ Gcm.Schema.class_def "c" ~methods:[ ("m", "number") ] ]
      ()
  in
  let src =
    Wrapper.Source.make ~name:"FRAGILE" ~schema
      ~data:[ Molecule.Isa (s "o1", s "c") ]
      ()
  in
  let ch =
    F.wrap
      ~plan:
        (F.Script
           (List.init 9 (fun i -> { F.at = i + 1; fault = F.Transient "down" })))
      src
  in
  let rt = R.create () in
  let fetch () = R.fetch rt ch (fun _ -> ()) in
  let show_state () =
    R.state_to_string (R.health rt "FRAGILE").R.state
  in
  (* three exhausted fetches trip the breaker *)
  (match fetch () with Error _ -> () | Ok () -> Alcotest.fail "fetch 1 must fail");
  Alcotest.(check string) "still closed after one failure" "closed" (show_state ());
  (match fetch () with Error _ -> () | Ok () -> Alcotest.fail "fetch 2 must fail");
  (match fetch () with Error _ -> () | Ok () -> Alcotest.fail "fetch 3 must fail");
  Alcotest.(check string) "breaker open" "open" (show_state ());
  (* while open: fast-fail, no source contact *)
  let calls_before = F.calls ch in
  (match fetch () with Error _ -> () | Ok () -> Alcotest.fail "open must fail fast");
  Alcotest.(check int) "open does not touch the source" calls_before (F.calls ch);
  (* ride out the cooldown; the half-open probe succeeds and closes *)
  R.advance rt 1001;
  (match fetch () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "probe must close the breaker: %s" e);
  Alcotest.(check string) "closed again" "closed" (show_state ());
  let golden =
    [ (459, "open"); (1460, "half-open"); (1461, "closed") ]
  in
  Alcotest.(check (list (pair int string)))
    "golden transition transcript" golden
    (List.map
       (fun (t, st) -> (t, R.state_to_string st))
       (R.transitions (R.health rt "FRAGILE")));
  let h = R.health rt "FRAGILE" in
  Alcotest.(check int) "9 failed calls + 1 probe" 9 h.R.failures;
  Alcotest.(check int) "6 retries" 6 h.R.retries;
  Alcotest.(check int) "one trip" 1 h.R.trips

(* -------------------------------------------------------------------- *)
(* One explicit seed threads every QCheck generator in this file: set
   KIND_QCHECK_SEED to replay a failure run for run. *)

let qcheck_seed =
  match Sys.getenv_opt "KIND_QCHECK_SEED" with
  | Some sd -> ( try int_of_string (String.trim sd) with _ -> 0)
  | None -> 0

let to_alcotest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| qcheck_seed |]) t

let suites =
  [
    ( Printf.sprintf "robustness.parsers [seed %d]" qcheck_seed,
      [
        to_alcotest prop_parser_total;
        to_alcotest prop_parser_total_chars;
        to_alcotest prop_xml_parser_total;
        to_alcotest prop_fl_reparse;
      ] );
    ( "robustness.engine",
      [
        Alcotest.test_case "rounds guard" `Quick test_max_rounds_guard;
        Alcotest.test_case "depth bound tight" `Quick test_depth_bound_tightness;
        Alcotest.test_case "unsafe rules rejected" `Quick test_unsafe_rule_rejected;
        Alcotest.test_case "compile errors surface" `Quick test_fl_compile_error_surfaces;
        Alcotest.test_case "breaker golden transcript" `Quick
          test_breaker_golden_transcript;
      ] );
  ]
