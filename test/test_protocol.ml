(* Tests for the wrapper/mediator wire protocol: codecs round-trip,
   endpoints execute, capability refusals travel as Failed. *)

open Mediation
module Xml = Xmlkit.Xml
module Molecule = Flogic.Molecule

let s = Logic.Term.sym
let f = Logic.Term.float
let v = Logic.Term.var

let sample_source () =
  let schema =
    Gcm.Schema.make ~name:"LAB"
      ~classes:[ Gcm.Schema.class_def "spine" ~methods:[ ("diameter", "number") ] ]
      ~relations:[ ("has", [ ("whole", "thing"); ("part", "thing") ]) ]
      ()
  in
  Wrapper.Source.make ~name:"LAB" ~schema
    ~capabilities:
      [
        Wrapper.Capability.scan_class "spine";
        Wrapper.Capability.select_class ~cls:"spine" ~on:[ "diameter" ];
        Wrapper.Capability.bind_relation ~rel:"has"
          ~pattern:[ Wrapper.Capability.Bound; Wrapper.Capability.Free ];
        Wrapper.Capability.template ~name:"wide" ~params:[ "min" ]
          ~body:"X : spine, X[diameter ->> D], D > $min";
      ]
    ~data:
      [
        Molecule.Isa (s "s1", s "spine");
        Molecule.Meth_val (s "s1", "diameter", f 0.3);
        Molecule.Isa (s "s2", s "spine");
        Molecule.Meth_val (s "s2", "diameter", f 0.8);
        Molecule.Rel_val ("has", [ ("whole", s "d1"); ("part", s "s1") ]);
      ]
    ()

let roundtrip_request req =
  match Protocol.decode_request (Protocol.encode_request req) with
  | Ok req' -> req'
  | Error e -> Alcotest.failf "request codec failed: %s" e

let test_request_roundtrip () =
  let reqs =
    [
      Protocol.Fetch_instances
        {
          cls = "spine";
          selections = [ ("diameter", Logic.Literal.Gt, f 0.5) ];
        };
      Protocol.Fetch_tuples { rel = "has"; pattern = [ ("whole", s "d1") ] };
      Protocol.Run_template { name = "wide"; args = [ ("min", f 0.5) ] };
      Protocol.Register
        { format = "gcm-xml"; document = Xml.elt "gcm" ~attrs:[ ("source", "X") ] [] };
    ]
  in
  List.iter (fun req -> assert (roundtrip_request req = req)) reqs

let test_request_roundtrip_quoted_terms () =
  (* terms with spaces / capitals / structure must survive the wire *)
  let req =
    Protocol.Fetch_instances
      {
        cls = "c";
        selections =
          [
            ("location", Logic.Literal.Eq, s "Purkinje Cell");
            ("weird", Logic.Literal.Eq, Logic.Term.app "f" [ s "a b"; f 1.5 ]);
            ("name", Logic.Literal.Eq, Logic.Term.str "a \"quoted\" str");
          ];
      }
  in
  Alcotest.(check bool) "quoted round trip" true (roundtrip_request req = req)

let test_fetch_over_wire () =
  let ep = Protocol.endpoint (sample_source ()) in
  (match
     Protocol.call ep
       (Protocol.Fetch_instances
          { cls = "spine"; selections = [ ("diameter", Logic.Literal.Gt, f 0.5) ] })
   with
  | Protocol.Objects [ o ] ->
    Alcotest.(check bool) "s2 returned" true (Logic.Term.equal o.Wrapper.Store.id (s "s2"))
  | _ -> Alcotest.fail "expected one object");
  (match
     Protocol.call ep
       (Protocol.Fetch_tuples { rel = "has"; pattern = [ ("whole", s "d1") ] })
   with
  | Protocol.Tuples [ [ a; b ] ] ->
    Alcotest.(check bool) "tuple content" true
      (Logic.Term.equal a (s "d1") && Logic.Term.equal b (s "s1"))
  | _ -> Alcotest.fail "expected one tuple");
  match
    Protocol.call ep (Protocol.Run_template { name = "wide"; args = [ ("min", f 0.5) ] })
  with
  | Protocol.Bindings [ _ ] -> ()
  | _ -> Alcotest.fail "expected one binding row"

let test_refusals_travel () =
  let ep = Protocol.endpoint (sample_source ()) in
  (match
     Protocol.call ep (Protocol.Fetch_tuples { rel = "has"; pattern = [] })
   with
  | Protocol.Failed _ -> ()
  | _ -> Alcotest.fail "ff access must fail over the wire");
  (match
     Protocol.call ep
       (Protocol.Fetch_instances { cls = "nope"; selections = [] })
   with
  | Protocol.Failed _ -> ()
  | _ -> Alcotest.fail "unknown class must fail over the wire");
  (* garbage documents become Failed, never exceptions *)
  match Protocol.decode_response (Protocol.handle ep (Xml.elt "garbage" [])) with
  | Ok (Protocol.Failed _) -> ()
  | _ -> Alcotest.fail "garbage must decode to Failed"

let test_register_dialogue () =
  let med = Mediation.Mediator.create Neuro.Anatom.full in
  let doc =
    Xmlkit.Parse.parse_exn
      {|<gcm source="W">
          <class name="obs"><method name="v" range="number"/></class>
          <instance id="o1" class="obs"/>
          <anchor class="obs" concept="spine"/>
        </gcm>|}
  in
  (* the full dialogue: encode the register message, decode it on the
     mediator side, register. *)
  let wire = Protocol.encode_request (Protocol.Register { format = "gcm-xml"; document = doc }) in
  (match Protocol.decode_request wire with
  | Ok (Protocol.Register { format; document }) -> (
    match Protocol.register_remote med ~source_name:"W" ~format document with
    | Ok () -> ()
    | Error e -> Alcotest.failf "register failed: %s" e)
  | _ -> Alcotest.fail "register message mangled");
  Alcotest.(check (list string)) "registered and indexed" [ "W" ]
    (Mediation.Mediator.select_sources med ~concepts:[ "spine" ]);
  let answers =
    Mediation.Mediator.query med
      [ Molecule.Pos (Molecule.isa (v "X") (s "W.obs")) ]
  in
  Alcotest.(check int) "data arrived" 1 (List.length answers)

(* ------------------------------------------------------------------ *)
(* Fault-runtime messages and the faulty wire                          *)

let roundtrip_response resp =
  match Protocol.decode_response (Protocol.encode_response resp) with
  | Ok resp' -> resp'
  | Error e -> Alcotest.failf "response codec failed: %s" e

let test_fault_messages_roundtrip () =
  Alcotest.(check bool) "ping" true (roundtrip_request Protocol.Ping = Protocol.Ping);
  List.iter
    (fun resp -> assert (roundtrip_response resp = resp))
    [
      Protocol.Pong { source = "LAB" };
      Protocol.Timed_out { source = "LAB"; after = 100 };
      Protocol.Unavailable { source = "LAB"; retry_in = Some 50 };
      Protocol.Unavailable { source = "LAB"; retry_in = None };
    ]

let test_faulty_endpoint () =
  let module F = Wrapper.Fault in
  let ep =
    Protocol.faulty_endpoint
      (F.wrap
         ~plan:
           (F.Script
              [
                { F.at = 1; fault = F.Transient "burp" };
                { F.at = 3; fault = F.Timeout };
                { F.at = 4; fault = F.Crash };
              ])
         (sample_source ()))
  in
  let fetch () =
    Protocol.call ep (Protocol.Fetch_instances { cls = "spine"; selections = [] })
  in
  (* call 1: the transient travels as Unavailable with a retry hint *)
  (match fetch () with
  | Protocol.Unavailable { source = "LAB"; retry_in = Some _ } -> ()
  | _ -> Alcotest.fail "transient must travel as Unavailable");
  (* call 2: clean *)
  (match fetch () with
  | Protocol.Objects [ _; _ ] -> ()
  | _ -> Alcotest.fail "clean call must answer");
  (* call 3: timeout, with the virtual cost it burned *)
  (match Protocol.call ep Protocol.Ping with
  | Protocol.Timed_out { source = "LAB"; after } ->
    Alcotest.(check int) "timeout cost" F.timeout_cost after
  | _ -> Alcotest.fail "timeout must travel as Timed_out");
  (* call 4 and after: crashed for good *)
  (match fetch () with
  | Protocol.Unavailable { source = "LAB"; retry_in = None } -> ()
  | _ -> Alcotest.fail "crash must travel as Unavailable without retry hint");
  match Protocol.call ep Protocol.Ping with
  | Protocol.Unavailable { source = "LAB"; retry_in = None } -> ()
  | _ -> Alcotest.fail "a crash latches"

let test_ping_pong_text () =
  let ep = Protocol.endpoint (sample_source ()) in
  match Protocol.call_text ep Protocol.Ping with
  | Ok (Protocol.Pong { source = "LAB" }, 0) -> ()
  | Ok _ -> Alcotest.fail "expected a clean pong"
  | Error e -> Alcotest.failf "text dialogue failed: %s" e

let test_corrupted_wire () =
  let module F = Wrapper.Fault in
  let fetch_text plan =
    let ep = Protocol.faulty_endpoint (F.wrap ~plan (sample_source ())) in
    Protocol.call_text ep
      (Protocol.Fetch_instances { cls = "spine"; selections = [] })
  in
  (* clean channel: zero recoveries, same answer as the in-process call *)
  (match fetch_text F.Reliable with
  | Ok (Protocol.Objects [ _; _ ], 0) -> ()
  | Ok _ -> Alcotest.fail "clean wire must carry both objects"
  | Error e -> Alcotest.failf "clean wire failed: %s" e);
  (* truncated payload: the lenient parser recovers a usable prefix —
     never an exception, and any Ok decode reports its repairs *)
  (match fetch_text (F.Script [ { F.at = 1; fault = F.Truncate 700 } ]) with
  | Ok (_, n) ->
    Alcotest.(check bool) "truncation needed repairs" true (n > 0)
  | Error _ -> () (* an unusable prefix is a clean decode error *));
  (* garbled payload: same totality contract *)
  match fetch_text (F.Script [ { F.at = 1; fault = F.Garble } ]) with
  | Ok _ | Error _ -> ()

let suites =
  [
    ( "protocol",
      [
        Alcotest.test_case "request codecs" `Quick test_request_roundtrip;
        Alcotest.test_case "quoted terms" `Quick test_request_roundtrip_quoted_terms;
        Alcotest.test_case "fetch over the wire" `Quick test_fetch_over_wire;
        Alcotest.test_case "refusals travel" `Quick test_refusals_travel;
        Alcotest.test_case "register dialogue" `Quick test_register_dialogue;
        Alcotest.test_case "fault message codecs" `Quick
          test_fault_messages_roundtrip;
        Alcotest.test_case "faults travel the wire" `Quick test_faulty_endpoint;
        Alcotest.test_case "ping/pong over text" `Quick test_ping_pong_text;
        Alcotest.test_case "corrupted payloads recover" `Quick
          test_corrupted_wire;
      ] );
  ]
