(* Tests for the CM plug-in mechanism: the four shipped dialects all
   land in the same GCM, and the registry behaves. *)

open Cm_plugins

let reg = Defaults.registry ()

let translate_ok format src =
  match Plugin.translate_string reg ~format src with
  | Ok tr -> tr
  | Error e -> Alcotest.failf "%s translation failed: %s" format e

let run_translation tr =
  let schema = tr.Plugin.schema in
  let t =
    Flogic.Fl_program.make
      ~signature:(Gcm.Schema.signature schema)
      (Gcm.Schema.to_rules schema @ List.map Flogic.Molecule.fact tr.Plugin.facts)
  in
  (t, Flogic.Fl_program.run t)

let s = Logic.Term.sym

(* -------------------------------------------------------------------- *)

let test_registry () =
  Alcotest.(check (list string)) "formats"
    [ "er-xml"; "gcm-xml"; "rdfs"; "uxf"; "xsd" ]
    (Plugin.formats reg);
  (match Plugin.translate_string reg ~format:"nope" "<x/>" with
  | Error e ->
    Alcotest.(check bool) "lists alternatives" true
      (String.length e > 0)
  | Ok _ -> Alcotest.fail "unknown format accepted");
  match Plugin.register reg Gcm_xml.plugin with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate registration accepted"

let gcm_doc =
  {|<gcm source="SYNAPSE">
      <class name="spine" super="compartment">
        <method name="diameter" range="number"/>
      </class>
      <class name="compartment"/>
      <relation name="has">
        <attr name="whole" class="compartment"/>
        <attr name="part" class="compartment"/>
      </relation>
      <instance id="s1" class="spine"/>
      <value object="s1" method="diameter">0.52</value>
      <tuple relation="has"><field attr="whole">d1</field>
                            <field attr="part">s1</field></tuple>
      <anchor class="spine" concept="spine" context="hippocampus"/>
      <rule>wide(S) :- S : spine, S[diameter -&gt;&gt; D], D &gt; 0.5.</rule>
    </gcm>|}

let test_gcm_xml () =
  let tr = translate_ok "gcm-xml" gcm_doc in
  Alcotest.(check (list string)) "classes" [ "spine"; "compartment" ]
    (Gcm.Schema.class_names tr.Plugin.schema);
  Alcotest.(check int) "facts" 3 (List.length tr.Plugin.facts);
  Alcotest.(check (list (triple string string (list string)))) "anchors"
    [ ("spine", "spine", [ "hippocampus" ]) ]
    tr.Plugin.anchors;
  let t, db = run_translation tr in
  Alcotest.(check bool) "isa closed upward" true
    (Flogic.Fl_program.holds t db (Flogic.Molecule.isa (s "s1") (s "compartment")));
  Alcotest.(check bool) "embedded rule ran" true
    (Flogic.Fl_program.holds t db (Flogic.Molecule.pred "wide" [ s "s1" ]))

let test_gcm_xml_export_roundtrip () =
  let tr = translate_ok "gcm-xml" gcm_doc in
  let doc = Gcm_xml.export ~source:"SYNAPSE" tr in
  let tr2 =
    match Plugin.translate reg ~format:"gcm-xml" doc with
    | Ok tr2 -> tr2
    | Error e -> Alcotest.failf "re-import failed: %s" e
  in
  Alcotest.(check (list string)) "classes preserved"
    (Gcm.Schema.class_names tr.Plugin.schema)
    (Gcm.Schema.class_names tr2.Plugin.schema);
  Alcotest.(check int) "facts preserved" (List.length tr.Plugin.facts)
    (List.length tr2.Plugin.facts);
  Alcotest.(check bool) "anchors preserved" true
    (tr.Plugin.anchors = tr2.Plugin.anchors)

let test_gcm_xml_errors () =
  let bad src =
    match Plugin.translate_string reg ~format:"gcm-xml" src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected error for %s" src
  in
  bad "<notgcm/>";
  bad {|<gcm><class/></gcm>|};
  bad {|<gcm><relation name="r"/></gcm>|};
  bad {|<gcm><rule>p(X :-</rule></gcm>|};
  (* reserved relation name *)
  bad {|<gcm><relation name="isa"><attr name="x"/></relation></gcm>|}

let er_doc =
  {|<er name="LAB">
      <entity name="neuron">
        <attribute name="organism" domain="string"/>
      </entity>
      <entity name="compartment"/>
      <isa sub="purkinje" super="neuron"/>
      <relationship name="has">
        <role name="whole" entity="neuron" card="1"/>
        <role name="part" entity="compartment"/>
      </relationship>
      <entity-instance entity="purkinje" key="p1">
        <attribute-value name="organism">rat</attribute-value>
      </entity-instance>
      <relationship-instance name="has">
        <role-value role="whole">p1</role-value>
        <role-value role="part">d1</role-value>
      </relationship-instance>
    </er>|}

let test_er_xml () =
  let tr = translate_ok "er-xml" er_doc in
  Alcotest.(check bool) "isa entity materialized" true
    (List.mem "purkinje" (Gcm.Schema.class_names tr.Plugin.schema));
  let t, db = run_translation tr in
  Alcotest.(check bool) "subclass edge" true
    (Flogic.Fl_program.holds t db (Flogic.Molecule.sub (s "purkinje") (s "neuron")));
  Alcotest.(check bool) "instance lifted" true
    (Flogic.Fl_program.holds t db (Flogic.Molecule.isa (s "p1") (s "neuron")));
  Alcotest.(check bool) "tuple lifted" true
    (Flogic.Fl_program.holds t db
       (Flogic.Molecule.Rel_val ("has", [ ("whole", s "p1"); ("part", s "d1") ])));
  (* cardinality 1 on whole: p1,d1 fine; adding a second whole for d1
     must produce a violation *)
  Alcotest.(check bool) "card ok" true (Flogic.Ic.consistent db);
  let tr_bad =
    translate_ok "er-xml"
      (String.concat ""
         [
           String.sub er_doc 0 (String.length er_doc - 5);
           {|<relationship-instance name="has">
              <role-value role="whole">p2</role-value>
              <role-value role="part">d1</role-value>
            </relationship-instance></er>|};
         ])
  in
  let _, db_bad = run_translation tr_bad in
  Alcotest.(check bool) "card violation detected" false
    (Flogic.Ic.consistent db_bad)

let uxf_doc =
  {|<uxf>
      <class name="SpinyNeuron">
        <superclass name="Neuron"/>
        <attribute name="somaSize" type="Real"/>
      </class>
      <class name="Neuron"/>
      <association name="has">
        <assocEnd role="whole" class="Neuron" multiplicity="1"/>
        <assocEnd role="part" class="Compartment" multiplicity="0..2"/>
      </association>
      <object name="n1" class="SpinyNeuron">
        <slot name="somaSize">17.5</slot>
      </object>
      <link association="has">
        <linkEnd role="whole" object="n1"/>
        <linkEnd role="part" object="d1"/>
      </link>
    </uxf>|}

let test_uxf () =
  Alcotest.(check string) "name normalisation" "spiny_neuron"
    (Uxf.normalise_name "SpinyNeuron");
  let tr = translate_ok "uxf" uxf_doc in
  Alcotest.(check bool) "classes normalised" true
    (List.mem "spiny_neuron" (Gcm.Schema.class_names tr.Plugin.schema));
  let t, db = run_translation tr in
  Alcotest.(check bool) "superclass" true
    (Flogic.Fl_program.holds t db
       (Flogic.Molecule.sub (s "spiny_neuron") (s "neuron")));
  Alcotest.(check bool) "slot value" true
    (Flogic.Fl_program.holds t db
       (Flogic.Molecule.meth_val (s "n1") "soma_size" (Logic.Term.float 17.5)));
  Alcotest.(check bool) "multiplicities hold" true (Flogic.Ic.consistent db)

let rdf_doc =
  {|<rdf:RDF name="ONTO">
      <rdfs:Class rdf:ID="Neuron"/>
      <rdfs:Class rdf:ID="Purkinje">
        <rdfs:subClassOf rdf:resource="Neuron"/>
      </rdfs:Class>
      <rdf:Property rdf:ID="organism">
        <rdfs:domain rdf:resource="Neuron"/>
        <rdfs:range rdf:resource="Literal"/>
      </rdf:Property>
      <rdf:Property rdf:ID="projects_to">
        <rdfs:domain rdf:resource="Neuron"/>
        <rdfs:range rdf:resource="Neuron"/>
      </rdf:Property>
      <rdf:Description rdf:ID="n1">
        <rdf:type rdf:resource="Purkinje"/>
        <organism>rat</organism>
        <projects_to rdf:resource="n2"/>
      </rdf:Description>
    </rdf:RDF>|}

let test_rdfs () =
  let tr = translate_ok "rdfs" rdf_doc in
  let t, db = run_translation tr in
  Alcotest.(check bool) "subClassOf" true
    (Flogic.Fl_program.holds t db (Flogic.Molecule.sub (s "Purkinje") (s "Neuron")));
  Alcotest.(check bool) "literal property is a method" true
    (Flogic.Fl_program.holds t db
       (Flogic.Molecule.meth_val (s "n1") "organism" (Logic.Term.str "rat")));
  Alcotest.(check bool) "resource property is a relation" true
    (Flogic.Fl_program.holds t db
       (Flogic.Molecule.Rel_val
          ("projects_to", [ ("subject", s "n1"); ("object", s "n2") ])));
  Alcotest.(check bool) "type closed upward" true
    (Flogic.Fl_program.holds t db (Flogic.Molecule.isa (s "n1") (s "Neuron")))

(* All dialects describing the same mini-CM agree once in GCM. *)
let test_dialect_agreement () =
  let gcm =
    translate_ok "gcm-xml"
      {|<gcm source="x">
          <class name="purkinje" super="neuron"/>
          <class name="neuron"/>
          <instance id="n1" class="purkinje"/>
        </gcm>|}
  in
  let er =
    translate_ok "er-xml"
      {|<er name="x">
          <entity name="neuron"/>
          <isa sub="purkinje" super="neuron"/>
          <entity-instance entity="purkinje" key="n1"/>
        </er>|}
  in
  let uxf =
    translate_ok "uxf"
      {|<uxf>
          <class name="Purkinje"><superclass name="Neuron"/></class>
          <class name="Neuron"/>
          <object name="n1" class="Purkinje"/>
        </uxf>|}
  in
  let holds tr =
    let t, db = run_translation tr in
    Flogic.Fl_program.holds t db (Flogic.Molecule.isa (s "n1") (s "neuron"))
  in
  Alcotest.(check bool) "gcm" true (holds gcm);
  Alcotest.(check bool) "er" true (holds er);
  Alcotest.(check bool) "uxf" true (holds uxf)

let suites =
  [
    ( "plugins",
      [
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "gcm-xml" `Quick test_gcm_xml;
        Alcotest.test_case "gcm-xml export roundtrip" `Quick test_gcm_xml_export_roundtrip;
        Alcotest.test_case "gcm-xml errors" `Quick test_gcm_xml_errors;
        Alcotest.test_case "er-xml" `Quick test_er_xml;
        Alcotest.test_case "uxf" `Quick test_uxf;
        Alcotest.test_case "rdfs" `Quick test_rdfs;
        Alcotest.test_case "dialect agreement" `Quick test_dialect_agreement;
      ] );
  ]
