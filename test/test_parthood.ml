(* Tests for Odell's six composition kinds ([Ode94], cited in
   Section 3): per-kind transitivity, exclusivity, homeomeronomy and
   the shared integrity denials. *)

open Flogic
module P = Gcm.Parthood
module Molecule = Flogic.Molecule

let s = Logic.Term.sym

let run rules = Fl_program.run (Fl_program.make rules)

let fact2 r a b = Molecule.fact (Molecule.pred r [ s a; s b ])

let holds db p args =
  Datalog.Database.mem db (Logic.Atom.make p (List.map s args))

let test_kind_matrix () =
  let expect kind (t, e, h) =
    Alcotest.(check bool) (P.kind_name kind ^ " transitive") t (P.is_transitive kind);
    Alcotest.(check bool) (P.kind_name kind ^ " exclusive") e (P.is_exclusive kind);
    Alcotest.(check bool) (P.kind_name kind ^ " homeomeric") h (P.is_homeomeric kind)
  in
  expect P.Component_of (true, true, false);
  expect P.Member_of (false, false, false);
  expect P.Portion_of (true, false, true);
  expect P.Stuff_of (false, false, false);
  expect P.Feature_of (true, false, false);
  expect P.Place_in (true, false, false)

let test_component_of () =
  let rules = P.rules P.Component_of ~rel:"part" in
  (* wheel -> axle assembly -> car: closure derived *)
  let db =
    run (rules @ [ fact2 "part" "wheel" "assembly"; fact2 "part" "assembly" "car" ])
  in
  Alcotest.(check bool) "closure" true (holds db "part_star" [ "wheel"; "car" ]);
  Alcotest.(check bool) "consistent" true (Ic.consistent db);
  (* sharing a component violates exclusivity *)
  let db2 =
    run (rules @ [ fact2 "part" "wheel" "car1"; fact2 "part" "wheel" "car2" ])
  in
  Alcotest.(check bool) "shared component flagged" true
    (List.exists (fun w -> w.Ic.name = "w_part_shared") (Ic.violations db2));
  (* cycles flagged through the closure *)
  let db3 =
    run (rules @ [ fact2 "part" "a" "b"; fact2 "part" "b" "c"; fact2 "part" "c" "a" ])
  in
  Alcotest.(check bool) "cycle flagged" true
    (List.exists (fun w -> w.Ic.name = "w_part_cycle") (Ic.violations db3))

let test_member_of_not_transitive () =
  let rules = P.rules P.Member_of ~rel:"member" in
  let db =
    run
      (rules
      @ [ fact2 "member" "tree" "forest"; fact2 "member" "forest" "reserve" ])
  in
  (* no member_star predicate is generated at all *)
  Alcotest.(check int) "no closure" 0 (Datalog.Database.count db "member_star");
  (* sharing is fine: a person can be a member of two committees *)
  let db2 =
    run (rules @ [ fact2 "member" "ann" "c1"; fact2 "member" "ann" "c2" ])
  in
  Alcotest.(check bool) "membership not exclusive" true (Ic.consistent db2)

let test_portion_homeomeric () =
  let rules = P.rules P.Portion_of ~rel:"portion" in
  let db =
    run
      (rules
      @ [
          fact2 "portion" "slice" "pie";
          Molecule.fact (Molecule.isa (s "pie") (s "dessert"));
        ])
  in
  (* the slice is a dessert too *)
  Alcotest.(check bool) "portion inherits kind" true
    (Datalog.Database.mem db
       (Logic.Atom.make Compile.isa_p [ s "slice"; s "dessert" ]))

let test_irreflexivity_all_kinds () =
  List.iter
    (fun kind ->
      let rules = P.rules kind ~rel:"p" in
      let db = run (rules @ [ fact2 "p" "x" "x" ]) in
      Alcotest.(check bool)
        (P.kind_name kind ^ " flags self-parthood")
        false (Ic.consistent db))
    [ P.Component_of; P.Member_of; P.Portion_of; P.Stuff_of; P.Feature_of; P.Place_in ]

let test_antisymmetry () =
  let rules = P.rules P.Stuff_of ~rel:"stuff" in
  let db = run (rules @ [ fact2 "stuff" "a" "b"; fact2 "stuff" "b" "a" ]) in
  Alcotest.(check bool) "2-cycle flagged" true
    (List.exists (fun w -> w.Ic.name = "w_stuff_antisym") (Ic.violations db))

let test_describe () =
  Alcotest.(check string) "component" "component-of (transitive, exclusive)"
    (P.describe P.Component_of);
  Alcotest.(check string) "member" "member-of (plain)" (P.describe P.Member_of);
  Alcotest.(check string) "portion" "portion-of (transitive, homeomeric)"
    (P.describe P.Portion_of)

let suites =
  [
    ( "gcm.parthood",
      [
        Alcotest.test_case "kind matrix" `Quick test_kind_matrix;
        Alcotest.test_case "component-of" `Quick test_component_of;
        Alcotest.test_case "member-of" `Quick test_member_of_not_transitive;
        Alcotest.test_case "portion-of homeomeric" `Quick test_portion_homeomeric;
        Alcotest.test_case "irreflexivity" `Quick test_irreflexivity_all_kinds;
        Alcotest.test_case "antisymmetry" `Quick test_antisymmetry;
        Alcotest.test_case "describe" `Quick test_describe;
      ] );
  ]
