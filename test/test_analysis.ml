(* kindlint: golden diagnostics for seeded defects, no-false-positive
   properties against the generators that Program.make/Stratify accept,
   clean-lint assertions over the shipped corpus, and the satellite
   regressions (ic_d witness path, Signature error messages). *)

open Logic
module A = Analysis
module D = Analysis.Diagnostic
module Molecule = Flogic.Molecule
module Program = Datalog.Program

let s = Term.sym
let v = Term.var

(* naive substring test — diagnostics are short *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let codes ds = List.map (fun (d : D.t) -> d.D.code) ds
let with_code c ds = List.filter (fun (d : D.t) -> String.equal d.D.code c) ds

let check_has_code msg c ds =
  Alcotest.(check bool) msg true (List.mem c (codes ds))

let parse_lint src =
  let parsed = Flogic.Fl_parser.parse_program_exn src in
  A.Kindlint.lint_program
    (Flogic.Fl_program.make ~signature:parsed.Flogic.Fl_parser.signature
       parsed.Flogic.Fl_parser.rules)

(* ------------------------------------------------------------------ *)
(* Golden corruption 1: unsafe rule *)

let test_golden_unsafe () =
  let ds = parse_lint "suspicious(X, Y) :- X : spine." in
  match with_code "unsafe-rule" ds with
  | [ d ] ->
    Alcotest.(check bool) "severity" true (d.D.severity = D.Error);
    Alcotest.(check bool) "names the variable" true
      (String.length d.D.message >= 10
      && contains d.D.message "Y")
  | other ->
    Alcotest.failf "expected exactly one unsafe-rule, got %d with %s"
      (List.length other)
      (String.concat "," (codes ds))

(* ------------------------------------------------------------------ *)
(* Golden corruption 2: negative cycle, with the cycle spelled out *)

let test_golden_negative_cycle () =
  let rules =
    [
      Rule.make (Atom.make "win" [ v "X" ])
        [
          Literal.pos "move" [ v "X"; v "Y" ];
          Literal.neg "win" [ v "Y" ];
        ];
      Rule.make (Atom.make "move" [ s "a"; s "b" ]) [];
    ]
  in
  let p = Program.make_exn rules in
  (match A.Strat_lint.negative_cycle p with
  | None -> Alcotest.fail "expected a negative cycle"
  | Some cycle ->
    Alcotest.(check bool) "cycle closes on win" true
      (List.exists
         (fun (e : Datalog.Stratify.edge) ->
           e.Datalog.Stratify.nonmono
           && String.equal e.Datalog.Stratify.to_pred "win")
         cycle));
  let ds = A.Strat_lint.lint ~fallback_ok:false p in
  match with_code "negative-cycle" ds with
  | [ d ] ->
    Alcotest.(check bool) "error when fallback is off" true
      (d.D.severity = D.Error);
    Alcotest.(check bool) "message prints the cycle" true
      (contains d.D.message "win" && contains d.D.message "-\xc2\xac->")
  | _ -> Alcotest.fail "expected exactly one negative-cycle diagnostic"

let test_negative_cycle_warning_when_fallback_ok () =
  let p =
    Program.make_exn
      [
        Rule.make (Atom.make "p" [ v "X" ])
          [ Literal.pos "e" [ v "X" ]; Literal.neg "q" [ v "X" ] ];
        Rule.make (Atom.make "q" [ v "X" ])
          [ Literal.pos "e" [ v "X" ]; Literal.neg "p" [ v "X" ] ];
      ]
  in
  match with_code "negative-cycle" (A.Strat_lint.lint p) with
  | [ d ] -> Alcotest.(check bool) "warning" true (d.D.severity = D.Warning)
  | _ -> Alcotest.fail "expected one negative-cycle diagnostic"

(* ------------------------------------------------------------------ *)
(* Golden corruption 3: anchor at a dangling domain-map concept *)

let broken_anchor_source () =
  Wrapper.Source.make ~name:"LAB"
    ~schema:
      (Gcm.Schema.make ~name:"LAB"
         ~classes:
           [ Gcm.Schema.class_def "spine" ~methods:[ ("diameter", "number") ] ]
         ())
    ~anchors:[ ("spine", "no_such_concept", []) ]
    ~data:[ Molecule.Isa (s "s1", s "spine") ]
    ()

let test_golden_dangling_anchor () =
  let dm = Domain_map.Dmap.add_concept Domain_map.Dmap.empty "neuron" in
  let med = Mediation.Mediator.create dm in
  (* warn policy: registration succeeds, diagnostic lands in warnings *)
  (match Mediation.Mediator.register_source med (broken_anchor_source ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "warn policy must not reject: %s" e);
  Alcotest.(check bool) "warning recorded" true
    (List.exists
       (fun w -> contains w "no_such_concept")
       (Mediation.Mediator.translation_warnings med));
  let ds = Mediation.Lint.federation med in
  (match with_code "unknown-anchor-concept" ds with
  | [ d ] ->
    Alcotest.(check bool) "error severity" true (d.D.severity = D.Error);
    Alcotest.(check bool) "names source and concept" true
      (contains d.D.message "LAB" && contains d.D.message "no_such_concept")
  | _ -> Alcotest.fail "expected exactly one unknown-anchor-concept");
  (* reject policy: the same source is refused *)
  let med2 =
    Mediation.Mediator.create
      ~config:
        {
          Mediation.Mediator.default_config with
          Mediation.Mediator.lint = Mediation.Mediator.Lint_reject;
        }
      dm
  in
  match Mediation.Mediator.register_source med2 (broken_anchor_source ()) with
  | Ok () -> Alcotest.fail "reject policy must refuse the registration"
  | Error e ->
    Alcotest.(check bool) "rejection names the defect" true
      (contains e "unknown-anchor-concept")

(* ------------------------------------------------------------------ *)
(* Golden corruption 4: bound-argument-only relation, free variable *)

let bound_only_source () =
  Wrapper.Source.make ~name:"LAB"
    ~schema:
      (Gcm.Schema.make ~name:"LAB"
         ~classes:[ Gcm.Schema.class_def "spine" ]
         ~relations:
           [ ("has", [ ("whole", "thing"); ("part", "thing") ]) ]
         ())
    ~capabilities:
      [
        Wrapper.Capability.scan_class "spine";
        (* the wrapper answers has(whole, part) only with whole bound *)
        Wrapper.Capability.bind_relation ~rel:"has"
          ~pattern:[ Wrapper.Capability.Bound; Wrapper.Capability.Free ];
      ]
    ~anchors:[ ("spine", "neuron", []) ]
    ~data:[ Molecule.Isa (s "s1", s "spine") ]
    ()

let test_golden_infeasible_access () =
  let dm = Domain_map.Dmap.add_concept Domain_map.Dmap.empty "neuron" in
  let med = Mediation.Mediator.create dm in
  (match Mediation.Mediator.register_source med (bound_only_source ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* W is never bound by anything: no ordering can execute the access *)
  let infeasible =
    [
      Molecule.Pos
        (Molecule.Rel_val
           ("LAB.has", [ ("whole", v "W"); ("part", v "P") ]));
    ]
  in
  (match with_code "infeasible-access" (Mediation.Lint.query med infeasible) with
  | [ d ] ->
    Alcotest.(check bool) "error severity" true (d.D.severity = D.Error);
    Alcotest.(check bool) "names the free attribute" true
      (contains d.D.message "whole")
  | ds ->
    Alcotest.failf "expected exactly one infeasible-access, got %s"
      (String.concat "," (codes ds)));
  (* binding the argument first makes the same access feasible *)
  let feasible =
    [
      Molecule.Pos (Molecule.Isa (v "W", s "neuron"));
      Molecule.Pos
        (Molecule.Rel_val
           ("LAB.has", [ ("whole", v "W"); ("part", v "P") ]));
    ]
  in
  Alcotest.(check (list string))
    "feasible once W is bound" []
    (codes (D.errors (Mediation.Lint.query med feasible)))

(* ------------------------------------------------------------------ *)
(* More pass-level goldens *)

let test_rule_lint_details () =
  let ds =
    parse_lint
      "p(X) :- e(X).\n\
       p(X) :- e(X).\n\
       narrow(S) :- e(S), m(S, D).\n\
       e(a). m(a, b).\n\
       bad(X) :- e(X), ghost(X)."
  in
  check_has_code "duplicate" "duplicate-rule" ds;
  check_has_code "unused" "unused-variable" ds;
  check_has_code "undeclared" "undeclared-predicate" ds

let test_arity_mismatch () =
  let ds = parse_lint "@relation has(whole, part).\nbad(X) :- has(X)." in
  match with_code "arity-mismatch" ds with
  | [ d ] ->
    Alcotest.(check bool) "names the layout" true
      (contains d.D.message "whole")
  | _ -> Alcotest.fail "expected exactly one arity-mismatch"

(* Rule_lint's capped syntactic subsumption is retired: the semantic
   containment pass (Contain_lint) owns the verdict now. The syntactic
   check survives only as [Rule_lint.subsumes], kept as a differential
   oracle — whatever it catches, containment must catch too. *)
let test_subsumed_rule () =
  let general =
    Rule.make (Atom.make "p" [ v "X" ]) [ Literal.pos "e" [ v "X" ] ]
  in
  let specific =
    Rule.make
      (Atom.make "p" [ v "X" ])
      [ Literal.pos "e" [ v "X" ]; Literal.pos "f" [ v "X" ] ]
  in
  let rules =
    [
      general;
      specific;
      Rule.make (Atom.make "e" [ s "a" ]) [];
      Rule.make (Atom.make "f" [ s "a" ]) [];
    ]
  in
  Alcotest.(check int) "rule_lint no longer flags subsumption" 0
    (List.length (with_code "subsumed-rule" (A.Rule_lint.lint rules)));
  Alcotest.(check int) "containment pass flags it instead" 1
    (List.length (with_code "rule-implied-by-rule" (A.Contain_lint.lint rules)));
  (* differential: the retired syntactic oracle implies the semantic one *)
  Alcotest.(check bool) "syntactic subsumption still holds" true
    (A.Rule_lint.subsumes ~general ~specific);
  Alcotest.(check bool) "semantic containment agrees" true
    (A.Contain.contained A.Contain.empty_ctx specific general)

let test_dmap_lint_cycle () =
  let dm = Domain_map.Dmap.empty in
  let dm = Domain_map.Dmap.isa dm "a" "b" in
  let dm = Domain_map.Dmap.isa dm "b" "c" in
  let dm = Domain_map.Dmap.isa dm "c" "a" in
  (match A.Dmap_lint.isa_cycle dm with
  | Some cycle ->
    Alcotest.(check int) "cycle length" 4 (List.length cycle);
    Alcotest.(check string) "closed" (List.hd cycle)
      (List.nth cycle (List.length cycle - 1))
  | None -> Alcotest.fail "expected an isa cycle");
  check_has_code "isa-cycle" "isa-cycle" (A.Dmap_lint.lint dm);
  let acyclic = Domain_map.Dmap.isa Domain_map.Dmap.empty "a" "b" in
  Alcotest.(check bool) "acyclic map is clean" true
    (A.Dmap_lint.isa_cycle acyclic = None)

let test_dmap_lint_conflicts () =
  let dm = Domain_map.Dmap.isa Domain_map.Dmap.empty "a" "b" in
  let dm = Domain_map.Dmap.eqv dm "a" "b" in
  check_has_code "eqv+isa" "conflicting-eqv" (A.Dmap_lint.lint dm);
  (* the paper's own idiom must stay clean: eqv into an AND node *)
  let dm2 = Domain_map.Dmap.add_concepts Domain_map.Dmap.empty [ "n"; "sp" ] in
  let dm2, andn = Domain_map.Dmap.and_node dm2 [ "n"; "sp" ] in
  let dm2 = Domain_map.Dmap.eqv dm2 "spiny" andn in
  Alcotest.(check (list string)) "no conflict for eqv-to-AND" []
    (codes
       (List.filter
          (fun (d : D.t) -> d.D.severity <> D.Info)
          (A.Dmap_lint.lint dm2)))

let test_template_hygiene () =
  let info =
    A.Cap_lint.of_source
      (Wrapper.Source.make ~name:"LAB"
         ~schema:(Gcm.Schema.make ~name:"LAB" ())
         ~capabilities:
           [
             Wrapper.Capability.template ~name:"t1" ~params:[ "min"; "max" ]
               ~body:"X : spine, X[diameter ->> D], D > $min, D < $limit";
           ]
         ())
  in
  let ds = A.Cap_lint.lint_templates info in
  check_has_code "unused param" "unused-template-param" ds;
  check_has_code "unknown param" "unknown-template-param" ds

(* ------------------------------------------------------------------ *)
(* No false positives: whatever the generators build and the engine
   accepts, the linter must call safe and stratified. *)

let test_no_false_positives () =
  for seed = 0 to 39 do
    let st = Random.State.make [| 7919 * seed |] in
    let rules, _idb = Test_differential.gen_rules st in
    List.iter
      (fun r ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: no safety errors in %s" seed
             (Rule.to_string r))
          true
          (Rule.safety_errors r = []))
      rules;
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d: linter agrees the program is safe" seed)
      []
      (codes (with_code "unsafe-rule" (A.Rule_lint.lint rules)));
    let p = Program.make_exn rules in
    (* generator programs are stratified by construction *)
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: no cycle reported" seed)
      true
      (A.Strat_lint.negative_cycle p = None);
    (* and agreement with the engine's own verdict, both directions *)
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: agreement with Stratify" seed)
      (Datalog.Stratify.is_stratified p)
      (A.Strat_lint.negative_cycle p = None)
  done

(* ------------------------------------------------------------------ *)
(* Clean corpus: the demo federation and the shipped sample *)

let test_demo_federation_clean () =
  let med =
    Neuro.Sources.standard_mediator { Neuro.Sources.seed = 42; scale = 10 }
  in
  let ds = Mediation.Lint.federation med in
  Alcotest.(check (list string)) "no errors" [] (codes (D.errors ds))

let test_sample_clean () =
  (* keep in sync with samples/spines.flp; `dune build @lint` checks the
     file itself, this pins the library-level path *)
  let src =
    "spine :: ion_regulating_component.\n\
     spine[diameter => number].\n\
     s1 : spine. s1[diameter ->> 0.31].\n\
     @relation contains(spine, protein).\n\
     contains[spine -> s1; protein -> calbindin].\n\
     wide(S) :- S : spine, S[diameter ->> D], D > 0.5.\n\
     w_unmeasured(S) : ic :- S : spine, not measured(S).\n\
     measured(S) :- S[diameter ->> _D].\n"
  in
  let ds = parse_lint src in
  Alcotest.(check (list string)) "clean" []
    (codes (List.filter (fun (d : D.t) -> d.D.severity <> D.Info) ds))

(* ------------------------------------------------------------------ *)
(* Satellite: ic_d is the single witness path, agreeing with the legacy
   isa-encoded scan *)

let legacy_ic_members db =
  (* the pre-migration reading: ic_d plus ic members encoded as isa
     facts — kept here as the oracle for the migration *)
  let from_ic =
    Datalog.Database.facts db Flogic.Compile.ic_p
    |> List.filter_map (fun (a : Atom.t) ->
           match a.Atom.args with [ w ] -> Some w | _ -> None)
  in
  let from pred =
    Datalog.Database.facts db pred
    |> List.filter_map (fun (a : Atom.t) ->
           match a.Atom.args with
           | [ w; Term.Const (Term.Sym c) ]
             when String.equal c Flogic.Compile.ic_class -> Some w
           | _ -> None)
  in
  from_ic
  @ from (Flogic.Compile.declared Flogic.Compile.isa_p)
  @ from Flogic.Compile.isa_p
  |> List.sort_uniq Term.compare

let test_ic_migration_agrees () =
  let parsed =
    Flogic.Fl_parser.parse_program_exn
      "s1 : spine. s2 : spine.\n\
       s1[diameter ->> 0.3].\n\
       w_unmeasured(S) : ic :- S : spine, not measured(S).\n\
       measured(S) :- S[diameter ->> _D].\n"
  in
  let t =
    Flogic.Fl_program.make ~signature:parsed.Flogic.Fl_parser.signature
      parsed.Flogic.Fl_parser.rules
  in
  let db = Flogic.Fl_program.run t in
  let ws = Flogic.Ic.violations db in
  Alcotest.(check int) "one witness" 1 (List.length ws);
  Alcotest.(check string) "the unmeasured spine" "w_unmeasured"
    (List.hd ws).Flogic.Ic.name;
  (* regression: the dedicated predicate reports exactly what the legacy
     combined scan reported *)
  Alcotest.(check (list string)) "old and new witness paths agree"
    (List.map Term.to_string (legacy_ic_members db))
    (List.map
       (fun (w : Flogic.Ic.witness) ->
         Term.to_string (Flogic.Ic.witness_term ~name:w.Flogic.Ic.name ~args:w.Flogic.Ic.args))
       ws)

(* ------------------------------------------------------------------ *)
(* Satellite: Signature error messages name relation and both layouts *)

let test_signature_messages () =
  let sg =
    Flogic.Signature.declare "has" [ "whole"; "part" ] Flogic.Signature.empty
  in
  (match
     Flogic.Signature.declare "has" [ "part"; "whole" ] sg
   with
  | exception Invalid_argument m ->
    List.iter
      (fun affix ->
        Alcotest.(check bool)
          (Printf.sprintf "declare message mentions %s" affix)
          true
          (contains m affix))
      [ "has"; "part,whole"; "whole,part" ]
  | _ -> Alcotest.fail "redeclaration must raise");
  let sg2 =
    Flogic.Signature.declare "has" [ "container"; "member" ]
      Flogic.Signature.empty
  in
  match Flogic.Signature.merge sg sg2 with
  | exception Invalid_argument m ->
    List.iter
      (fun affix ->
        Alcotest.(check bool)
          (Printf.sprintf "merge message mentions %s" affix)
          true
          (contains m affix))
      [ "has"; "whole,part"; "container,member" ]
  | _ -> Alcotest.fail "conflicting merge must raise"

(* ------------------------------------------------------------------ *)
(* JSON shape *)

let test_json_output () =
  let d =
    D.make ~severity:D.Error ~pass:"rules" ~code:"unsafe-rule"
      ~location:(D.Rule { index = 3; text = "p(X) :- q(\"a\\b\")."; pos = Some (7, 1) })
      "variable \"Y\" is not range-restricted" ~hint:"bind Y"
  in
  let j = D.to_json d in
  List.iter
    (fun affix ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %s" affix)
        true
        (contains j affix))
    [
      "\"severity\":\"error\"";
      "\"code\":\"unsafe-rule\"";
      "\"kind\":\"rule\"";
      "\"index\":3";
      "\\\"a\\\\b\\\"";
      "\"hint\":\"bind Y\"";
    ]

let suites =
  [
    ( "analysis",
      [
        Alcotest.test_case "golden: unsafe rule" `Quick test_golden_unsafe;
        Alcotest.test_case "golden: negative cycle" `Quick
          test_golden_negative_cycle;
        Alcotest.test_case "negative cycle is a warning with fallback" `Quick
          test_negative_cycle_warning_when_fallback_ok;
        Alcotest.test_case "golden: dangling anchor concept" `Quick
          test_golden_dangling_anchor;
        Alcotest.test_case "golden: infeasible access" `Quick
          test_golden_infeasible_access;
        Alcotest.test_case "rule lint details" `Quick test_rule_lint_details;
        Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
        Alcotest.test_case "subsumed rule" `Quick test_subsumed_rule;
        Alcotest.test_case "domain-map isa cycle" `Quick test_dmap_lint_cycle;
        Alcotest.test_case "domain-map edge conflicts" `Quick
          test_dmap_lint_conflicts;
        Alcotest.test_case "template hygiene" `Quick test_template_hygiene;
        Alcotest.test_case "no false positives" `Quick test_no_false_positives;
        Alcotest.test_case "demo federation lints clean" `Quick
          test_demo_federation_clean;
        Alcotest.test_case "sample program lints clean" `Quick
          test_sample_clean;
        Alcotest.test_case "ic_d migration agrees with legacy scan" `Quick
          test_ic_migration_agrees;
        Alcotest.test_case "signature error messages" `Quick
          test_signature_messages;
        Alcotest.test_case "diagnostic json" `Quick test_json_output;
      ] );
  ]
