(* Tests for the XML substrate: parser, printer, paths. *)

open Xmlkit

let parse_ok src =
  match Parse.parse src with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_basic () =
  let t = parse_ok {|<a x="1"><b>hi</b><c/></a>|} in
  Alcotest.(check (option string)) "root tag" (Some "a") (Xml.tag t);
  Alcotest.(check (option string)) "attr" (Some "1") (Xml.attr "x" t);
  Alcotest.(check int) "children" 2 (List.length (Xml.child_elements t));
  Alcotest.(check string) "text" "hi"
    (Xml.text_content (Option.get (Xml.find_child "b" t)))

let test_parse_entities () =
  let t = parse_ok {|<a t="&lt;&amp;&gt;">x &#65; &quot;y&quot;</a>|} in
  Alcotest.(check (option string)) "attr entities" (Some "<&>") (Xml.attr "t" t);
  Alcotest.(check string) "text entities" "x A \"y\"" (Xml.text_content t)

let test_parse_comments_cdata () =
  let t = parse_ok {|<a><!-- nope --><![CDATA[<raw>&]]></a>|} in
  Alcotest.(check string) "cdata preserved" "<raw>&" (Xml.text_content t)

let test_parse_prolog_doctype () =
  let t = parse_ok {|<?xml version="1.0"?><!DOCTYPE a><a/>|} in
  Alcotest.(check (option string)) "root" (Some "a") (Xml.tag t)

let test_parse_errors () =
  let bad src =
    match Parse.parse src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %s" src
  in
  bad "<a>";
  bad "<a></b>";
  bad "<a attr></a>";
  bad "<a/><b/>";
  bad "<a>&unknown;</a>";
  bad ""

let test_roundtrip () =
  let t =
    Xml.elt "gcm"
      ~attrs:[ ("source", "SYNAPSE"); ("q", "a\"b<c>") ]
      [
        Xml.leaf "rule" "big(S) :- S : spine, D > 0.5.";
        Xml.elt "class" ~attrs:[ ("name", "spine") ] [];
        Xml.leaf "note" "5 < 6 && x";
      ]
  in
  let t' = parse_ok (Print.to_string t) in
  Alcotest.(check bool) "roundtrip equal" true (Xml.equal t t')

let prop_roundtrip =
  let gen_xml =
    let open QCheck.Gen in
    let name = oneofl [ "a"; "b"; "cde"; "x-1" ] in
    let txt = oneofl [ "hello"; "a&b"; "<tag>"; "x\"y'z"; "1 2 3" ] in
    sized_size (int_bound 3) @@ fix (fun self n ->
      if n = 0 then map Xml.text txt
      else
        map3
          (fun tag attrs children -> Xml.elt tag ~attrs children)
          name
          (list_size (int_bound 2) (pair name txt))
          (list_size (int_bound 3) (self (n - 1))))
  in
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:200
    (QCheck.make ~print:Print.to_string gen_xml)
    (fun t ->
      match Xml.tag t with
      | None -> QCheck.assume_fail () (* top-level text not a document *)
      | Some _ -> (
        (* adjacent text nodes merge on reparse: normalise first *)
        let rec normalise t =
          match t with
          | Xml.Text s -> Xml.Text s
          | Xml.Element (tag, attrs, children) ->
            let merged =
              List.fold_left
                (fun acc c ->
                  match normalise c, acc with
                  | Xml.Text s, Xml.Text s' :: rest -> Xml.Text (s' ^ s) :: rest
                  | c, acc -> c :: acc)
                [] children
              |> List.rev
              |> List.filter (function
                   | Xml.Text s -> String.trim s <> ""
                   | _ -> true)
            in
            Xml.Element (tag, attrs, merged)
        in
        let t = normalise t in
        match Parse.parse (Print.to_string t) with
        | Ok t' -> Xml.equal t t'
        | Error _ -> false))

let sample =
  parse_ok
    {|<catalog>
        <book id="b1" lang="en"><title>Spines</title><year>2001</year></book>
        <book id="b2"><title>Dendrites</title><year>1999</year></book>
        <journal id="j1"><title>Brain</title></journal>
        <shelf><book id="b3" lang="en"><title>Axons</title></book></shelf>
      </catalog>|}

let test_path_child () =
  Alcotest.(check int) "two books" 2
    (List.length (Path.select_str "/catalog/book" sample));
  Alcotest.(check (list string)) "titles"
    [ "Spines"; "Dendrites" ]
    (Path.texts (Path.parse_exn "/catalog/book/title") sample)

let test_path_descendant () =
  Alcotest.(check int) "descendant books" 3
    (List.length (Path.select_str "//book" sample));
  Alcotest.(check int) "wildcard" 3
    (List.length (Path.select_str "/catalog/*/title" sample))

let test_path_filters () =
  Alcotest.(check int) "attr filter" 1
    (List.length (Path.select_str "/catalog/book[@id='b2']" sample));
  Alcotest.(check int) "attr presence" 1
    (List.length (Path.select_str "/catalog/book[@lang]" sample));
  Alcotest.(check int) "position" 1
    (List.length (Path.select_str "/catalog/book[2]" sample));
  Alcotest.(check (list string)) "trailing attr" [ "b1"; "b2"; "b3" ]
    (Path.select_attrs (Path.parse_exn "//book/@id") sample)

let test_path_errors () =
  match Path.parse "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty path must fail"

let suites =
  [
    ( "xmlkit.parse",
      [
        Alcotest.test_case "basic" `Quick test_parse_basic;
        Alcotest.test_case "entities" `Quick test_parse_entities;
        Alcotest.test_case "comments/cdata" `Quick test_parse_comments_cdata;
        Alcotest.test_case "prolog/doctype" `Quick test_parse_prolog_doctype;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        QCheck_alcotest.to_alcotest prop_roundtrip;
      ] );
    ( "xmlkit.path",
      [
        Alcotest.test_case "child steps" `Quick test_path_child;
        Alcotest.test_case "descendant/wildcard" `Quick test_path_descendant;
        Alcotest.test_case "filters" `Quick test_path_filters;
        Alcotest.test_case "errors" `Quick test_path_errors;
      ] );
  ]
