(* Tests for the logic kernel: terms, substitutions, unification,
   atoms, literals, rule safety. *)

open Logic

let term_testable = Alcotest.testable Term.pp Term.equal

let v = Term.var
let s = Term.sym
let i = Term.int
let f name args = Term.app name args

(* -------------------------------------------------------------------- *)
(* Term tests *)

let test_term_equal () =
  Alcotest.(check bool) "sym equal" true (Term.equal (s "a") (s "a"));
  Alcotest.(check bool) "sym/str differ" false (Term.equal (s "a") (Term.str "a"));
  Alcotest.(check bool) "app equal" true
    (Term.equal (f "f" [ s "a"; i 1 ]) (f "f" [ s "a"; i 1 ]));
  Alcotest.(check bool) "app arity differ" false
    (Term.equal (f "f" [ s "a" ]) (f "f" [ s "a"; s "a" ]))

let test_term_vars () =
  Alcotest.(check (list string))
    "vars in order, deduped" [ "X"; "Y" ]
    (Term.vars (f "f" [ v "X"; f "g" [ v "Y"; v "X" ] ]))

let test_term_ground () =
  Alcotest.(check bool) "const ground" true (Term.is_ground (i 3));
  Alcotest.(check bool) "var not ground" false (Term.is_ground (v "X"));
  Alcotest.(check bool) "nested" false
    (Term.is_ground (f "f" [ s "a"; f "g" [ v "Z" ] ]))

let test_term_depth_size () =
  Alcotest.(check int) "depth const" 1 (Term.depth (s "a"));
  Alcotest.(check int) "depth nested" 3 (Term.depth (f "f" [ f "g" [ s "a" ] ]));
  Alcotest.(check int) "size nested" 4
    (Term.size (f "f" [ f "g" [ s "a" ]; s "b" ]))

let test_term_app_empty () =
  Alcotest.check_raises "empty app rejected"
    (Invalid_argument "Term.app: empty argument list (use Term.sym)")
    (fun () -> ignore (Term.app "f" []))

let test_const_ordering () =
  let open Term in
  Alcotest.(check bool) "sym < str" true (compare_const (Sym "z") (Str "a") < 0);
  Alcotest.(check bool) "int < float" true
    (compare_const (Int 99) (Float 0.1) < 0)

(* -------------------------------------------------------------------- *)
(* Substitution tests *)

let test_subst_apply () =
  let sub = Subst.bind "X" (s "a") Subst.empty in
  Alcotest.check term_testable "replaces bound var" (s "a")
    (Subst.apply sub (v "X"));
  Alcotest.check term_testable "leaves unbound var" (v "Y")
    (Subst.apply sub (v "Y"));
  Alcotest.check term_testable "descends into app"
    (f "f" [ s "a"; v "Y" ])
    (Subst.apply sub (f "f" [ v "X"; v "Y" ]))

let test_subst_idempotent () =
  (* bind Y after X->f(Y): X's range must be updated. *)
  let sub = Subst.bind "X" (f "f" [ v "Y" ]) Subst.empty in
  let sub = Subst.bind "Y" (s "b") sub in
  Alcotest.check term_testable "X normalised" (f "f" [ s "b" ])
    (Subst.apply sub (v "X"))

let test_subst_ground_fast_path () =
  (* The ground fast path in [bind] (all-ground substitution extended
     with a ground term skips re-normalization) must be invisible once
     non-ground bindings enter. Bind ground X via the fast path, then a
     non-ground range mentioning X: the new range must still resolve
     X. *)
  let sub = Subst.bind "X" (s "a") Subst.empty in
  let sub = Subst.bind "Y" (f "f" [ v "X"; v "Z" ]) sub in
  Alcotest.check term_testable "new range resolved against ground bindings"
    (f "f" [ s "a"; v "Z" ])
    (Subst.apply sub (v "Y"));
  (* grounding Z must normalise Y's range (slow path: sub is no longer
     all-ground, even though the bound term is ground) *)
  let sub = Subst.bind "Z" (s "b") sub in
  Alcotest.check term_testable "existing range normalised"
    (f "f" [ s "a"; s "b" ])
    (Subst.apply sub (v "Y"));
  (* back to an all-ground substitution: later fast-path binds must
     keep idempotency — no range may mention the new variable *)
  let sub = Subst.bind "W" (s "c") sub in
  List.iter
    (fun (x, t) ->
      Alcotest.(check bool)
        (Printf.sprintf "range of %s is ground" x)
        true (Term.is_ground t))
    (Subst.bindings sub);
  Alcotest.check term_testable "apply is idempotent"
    (Subst.apply sub (f "g" [ v "X"; v "Y"; v "W" ]))
    (Subst.apply sub (Subst.apply sub (f "g" [ v "X"; v "Y"; v "W" ])))

let test_subst_rebind_conflict () =
  let sub = Subst.bind "X" (s "a") Subst.empty in
  (match Subst.bind "X" (s "b") sub with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  (* Rebinding to the same term is a no-op. *)
  let sub' = Subst.bind "X" (s "a") sub in
  Alcotest.(check bool) "same rebind ok" true (Subst.equal sub sub')

let test_subst_compose () =
  let s1 = Subst.bind "X" (f "f" [ v "Y" ]) Subst.empty in
  let s2 = Subst.bind "Y" (s "c") Subst.empty in
  let c = Subst.compose s1 s2 in
  Alcotest.check term_testable "compose pushes through" (f "f" [ s "c" ])
    (Subst.apply c (v "X"));
  Alcotest.check term_testable "keeps s2 bindings" (s "c")
    (Subst.apply c (v "Y"))

let test_subst_restrict () =
  let sub =
    Subst.bind "X" (s "a") (Subst.bind "Y" (s "b") Subst.empty)
  in
  let r = Subst.restrict [ "X" ] sub in
  Alcotest.(check int) "only one binding" 1 (Subst.cardinal r);
  Alcotest.(check bool) "keeps X" true (Subst.mem "X" r)

(* -------------------------------------------------------------------- *)
(* Unification tests *)

let unify_ok t1 t2 =
  match Unify.unify t1 t2 with
  | Some sub -> sub
  | None -> Alcotest.failf "expected %a ~ %a to unify" Term.pp t1 Term.pp t2

let test_unify_basic () =
  let sub = unify_ok (f "f" [ v "X"; s "b" ]) (f "f" [ s "a"; v "Y" ]) in
  Alcotest.check term_testable "X=a" (s "a") (Subst.apply sub (v "X"));
  Alcotest.check term_testable "Y=b" (s "b") (Subst.apply sub (v "Y"))

let test_unify_clash () =
  Alcotest.(check bool) "functor clash" true
    (Unify.unify (f "f" [ s "a" ]) (f "g" [ s "a" ]) = None);
  Alcotest.(check bool) "const clash" true
    (Unify.unify (s "a") (s "b") = None)

let test_unify_occurs () =
  Alcotest.(check bool) "occurs check" true
    (Unify.unify (v "X") (f "f" [ v "X" ]) = None)

let test_unify_chain () =
  (* X ~ Y then Y ~ a must give X = a. *)
  let sub = unify_ok (v "X") (v "Y") in
  let sub =
    match Unify.unify ~init:sub (v "Y") (s "a") with
    | Some s -> s
    | None -> Alcotest.fail "chain unify failed"
  in
  Alcotest.check term_testable "X resolved through Y" (s "a")
    (Subst.apply sub (v "X"))

let test_unify_produces_unifier =
  (* Property: when unify succeeds the substitution equalises the terms. *)
  let gen_term =
    let open QCheck.Gen in
    sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map Term.var (oneofl [ "X"; "Y"; "Z" ]);
            map Term.sym (oneofl [ "a"; "b"; "c" ]);
            map Term.int (int_bound 3);
          ]
      else
        frequency
          [
            (2, map Term.var (oneofl [ "X"; "Y"; "Z" ]));
            (2, map Term.sym (oneofl [ "a"; "b" ]));
            ( 3,
              map2
                (fun name args -> Term.app name args)
                (oneofl [ "f"; "g" ])
                (list_size (int_range 1 3) (self (n / 2))) );
          ])
  in
  let arb = QCheck.make ~print:Term.to_string gen_term in
  QCheck.Test.make ~name:"unify gives a unifier" ~count:500
    (QCheck.pair arb arb)
    (fun (t1, t2) ->
      match Unify.unify t1 t2 with
      | None -> QCheck.assume_fail ()
      | Some sub -> Term.equal (Subst.apply sub t1) (Subst.apply sub t2))

let test_matches_oneside () =
  let p = f "f" [ v "X"; s "b" ] in
  (match Unify.matches ~pattern:p (f "f" [ s "a"; s "b" ]) with
  | Some sub ->
    Alcotest.check term_testable "X bound" (s "a") (Subst.apply sub (v "X"))
  | None -> Alcotest.fail "match expected");
  Alcotest.(check bool) "subject vars only match themselves" true
    (Unify.matches ~pattern:(s "a") (v "X") = None)

let test_variant () =
  Alcotest.(check bool) "renaming is variant" true
    (Unify.variant (f "f" [ v "X"; v "Y" ]) (f "f" [ v "A"; v "B" ]));
  Alcotest.(check bool) "non-injective is not" false
    (Unify.variant (f "f" [ v "X"; v "Y" ]) (f "f" [ v "A"; v "A" ]));
  Alcotest.(check bool) "ground variant" true
    (Unify.variant (s "a") (s "a"))

(* -------------------------------------------------------------------- *)
(* Atom and literal tests *)

let test_atom_unify () =
  let a1 = Atom.make "p" [ v "X"; s "b" ] in
  let a2 = Atom.make "p" [ s "a"; v "Y" ] in
  (match Atom.unify a1 a2 with
  | Some _ -> ()
  | None -> Alcotest.fail "atoms should unify");
  Alcotest.(check bool) "pred mismatch" true
    (Atom.unify a1 (Atom.make "q" [ s "a"; s "b" ]) = None);
  Alcotest.(check bool) "arity mismatch" true
    (Atom.unify a1 (Atom.make "p" [ s "a" ]) = None)

let test_literal_binds_needs () =
  let open Literal in
  let l1 = pos "p" [ v "X"; v "Y" ] in
  Alcotest.(check (list string)) "pos binds" [ "X"; "Y" ] (binds l1);
  Alcotest.(check (list string)) "pos needs nothing" [] (needs l1);
  let l2 = neg "q" [ v "X" ] in
  Alcotest.(check (list string)) "neg binds nothing" [] (binds l2);
  Alcotest.(check (list string)) "neg needs X" [ "X" ] (needs l2);
  let l3 = cmp Lt (v "X") (i 5) in
  Alcotest.(check (list string)) "cmp needs X" [ "X" ] (needs l3);
  let l4 =
    count ~target:(v "A") ~group_by:[ v "B" ] ~result:(v "N")
      [ Atom.make "r" [ v "A"; v "B" ] ]
  in
  Alcotest.(check (list string)) "agg binds N,B" [ "N"; "B" ] (binds l4)

let test_eval_cmp () =
  let open Literal in
  Alcotest.(check (option bool)) "3 < 5" (Some true)
    (eval_cmp Lt (i 3) (i 5));
  Alcotest.(check (option bool)) "int/float mix" (Some true)
    (eval_cmp Le (i 3) (Term.float 3.0));
  Alcotest.(check (option bool)) "strings ordered" (Some true)
    (eval_cmp Lt (s "abc") (s "abd"));
  Alcotest.(check (option bool)) "heterogeneous rejected" None
    (eval_cmp Lt (i 3) (s "a"));
  Alcotest.(check (option bool)) "eq on distinct types" (Some false)
    (eval_cmp Eq (i 3) (s "a"));
  Alcotest.(check (option bool)) "non-ground rejected" None
    (eval_cmp Lt (v "X") (i 3))

let test_eval_expr () =
  let open Literal in
  Alcotest.(check (option string)) "int arith" (Some "7")
    (Option.map Term.to_string
       (eval_expr (Bin (Add, Leaf (i 3), Leaf (i 4)))));
  Alcotest.(check (option string)) "div by zero" None
    (Option.map Term.to_string (eval_expr (Bin (Div, Leaf (i 3), Leaf (i 0)))));
  Alcotest.(check (option string)) "mixed promotes to float" (Some "3.5")
    (Option.map Term.to_string
       (eval_expr (Bin (Add, Leaf (i 3), Leaf (Term.float 0.5)))))

(* -------------------------------------------------------------------- *)
(* Rule safety *)

let test_rule_safety () =
  let ok r =
    match Rule.check_safety r with
    | Ok () -> ()
    | Error e -> Alcotest.failf "expected safe: %s" e
  in
  let bad r =
    match Rule.check_safety r with
    | Ok () -> Alcotest.failf "expected unsafe: %s" (Rule.to_string r)
    | Error _ -> ()
  in
  let p xs = Atom.make "p" xs and q xs = Literal.pos "q" xs in
  ok (Rule.make (p [ v "X" ]) [ q [ v "X" ] ]);
  bad (Rule.make (p [ v "X" ]) [ q [ v "Y" ] ]);
  (* negation needs prior binding *)
  bad (Rule.make (p [ v "X" ]) [ Literal.neg "q" [ v "X" ] ]);
  ok
    (Rule.make (p [ v "X" ])
       [ q [ v "X" ]; Literal.neg "r" [ v "X" ] ]);
  (* order independence: test literal before its binder *)
  ok
    (Rule.make (p [ v "X" ])
       [ Literal.cmp Literal.Lt (v "X") (i 5); q [ v "X" ] ]);
  (* assignment binds *)
  ok
    (Rule.make (p [ v "Y" ])
       [ q [ v "X" ]; Literal.assign (v "Y") (Literal.Leaf (v "X")) ]);
  (* aggregate result is bound *)
  ok
    (Rule.make (p [ v "N" ])
       [
         Literal.count ~target:(v "A") ~group_by:[] ~result:(v "N")
           [ Atom.make "r" [ v "A" ] ];
       ]);
  (* aggregate inner body must bind target *)
  bad
    (Rule.make (p [ v "N" ])
       [
         Literal.count ~target:(v "A") ~group_by:[] ~result:(v "N")
           [ Atom.make "r" [ v "B" ] ];
       ])

let test_rule_pp_roundtrip_shape () =
  let r =
    Rule.make
      (Atom.make "tc" [ v "X"; v "Y" ])
      [ Literal.pos "tc" [ v "X"; v "Z" ]; Literal.pos "e" [ v "Z"; v "Y" ] ]
  in
  Alcotest.(check string) "pp" "tc(X, Y) :- tc(X, Z), e(Z, Y)."
    (Rule.to_string r)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "logic.term",
      [
        Alcotest.test_case "equality" `Quick test_term_equal;
        Alcotest.test_case "vars" `Quick test_term_vars;
        Alcotest.test_case "groundness" `Quick test_term_ground;
        Alcotest.test_case "depth/size" `Quick test_term_depth_size;
        Alcotest.test_case "empty app" `Quick test_term_app_empty;
        Alcotest.test_case "const ordering" `Quick test_const_ordering;
      ] );
    ( "logic.subst",
      [
        Alcotest.test_case "apply" `Quick test_subst_apply;
        Alcotest.test_case "idempotence" `Quick test_subst_idempotent;
        Alcotest.test_case "ground fast path" `Quick
          test_subst_ground_fast_path;
        Alcotest.test_case "rebind conflict" `Quick test_subst_rebind_conflict;
        Alcotest.test_case "compose" `Quick test_subst_compose;
        Alcotest.test_case "restrict" `Quick test_subst_restrict;
      ] );
    ( "logic.unify",
      [
        Alcotest.test_case "basic" `Quick test_unify_basic;
        Alcotest.test_case "clash" `Quick test_unify_clash;
        Alcotest.test_case "occurs" `Quick test_unify_occurs;
        Alcotest.test_case "chained" `Quick test_unify_chain;
        Alcotest.test_case "matching" `Quick test_matches_oneside;
        Alcotest.test_case "variant" `Quick test_variant;
        QCheck_alcotest.to_alcotest test_unify_produces_unifier;
      ] );
    ( "logic.atom_literal",
      [
        Alcotest.test_case "atom unify" `Quick test_atom_unify;
        Alcotest.test_case "binds/needs" `Quick test_literal_binds_needs;
        Alcotest.test_case "eval_cmp" `Quick test_eval_cmp;
        Alcotest.test_case "eval_expr" `Quick test_eval_expr;
      ] );
    ( "logic.rule",
      [
        Alcotest.test_case "safety" `Quick test_rule_safety;
        Alcotest.test_case "printing" `Quick test_rule_pp_roundtrip_shape;
      ] );
  ]

let _ = qsuite
