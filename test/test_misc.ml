(* Odds and ends: the FL well-founded facade, engine reports, DOT
   export, and a nonmonotonic-knowledge scenario from Section 4 run
   under the three-valued semantics. *)

open Logic
open Flogic

let s = Term.sym
let v = Term.var

let test_fl_wellfounded_total () =
  let rules =
    Fl_parser.(parse_program_exn {|
      move(a, b). move(b, c).
      win(X) :- move(X, Y), not win(Y).
    |}).Fl_parser.rules
  in
  let m = Fl_program.run_wellfounded (Fl_program.make rules) in
  Alcotest.(check bool) "total" true (Datalog.Wellfounded.is_total m);
  Alcotest.(check bool) "win(b)" true
    (Datalog.Database.mem m.Datalog.Wellfounded.true_facts
       (Atom.make "win" [ s "b" ]))

let test_fl_wellfounded_three_valued () =
  (* a draw position: both players can move forever *)
  let rules =
    Fl_parser.(parse_program_exn {|
      move(a, b). move(b, a). move(b, c).
      win(X) :- move(X, Y), not win(Y).
    |}).Fl_parser.rules
  in
  let m = Fl_program.run_wellfounded (Fl_program.make rules) in
  (* b can win by moving to the dead end c; a's only move hands b the
     win, so win(a) is false; both are decided here. *)
  Alcotest.(check bool) "win(b) true" true
    (Datalog.Database.mem m.Datalog.Wellfounded.true_facts (Atom.make "win" [ s "b" ]));
  Alcotest.(check int) "nothing undefined" 0
    (Datalog.Database.count m.Datalog.Wellfounded.undefined "win");
  (* the classic undefined case: pure 2-cycle *)
  let rules2 =
    Fl_parser.(parse_program_exn {|
      move(a, b). move(b, a).
      win(X) :- move(X, Y), not win(Y).
    |}).Fl_parser.rules
  in
  let m2 = Fl_program.run_wellfounded (Fl_program.make rules2) in
  Alcotest.(check int) "draw is undefined" 2
    (Datalog.Database.count m2.Datalog.Wellfounded.undefined "win")

let test_engine_report () =
  let rules =
    Fl_parser.(parse_program_exn {|
      e(a, b). e(b, c). e(c, d).
      t(X, Y) :- e(X, Y).
      t(X, Y) :- t(X, Z), e(Z, Y).
    |}).Fl_parser.rules
  in
  let report = ref Datalog.Engine.empty_report in
  let t = Fl_program.make rules in
  (match Fl_program.compile t with
  | Ok p ->
    ignore (Datalog.Engine.materialize ~report p (Datalog.Database.create ()))
  | Error e -> Alcotest.failf "compile: %s" e);
  Alcotest.(check bool) "stratified" true !report.Datalog.Engine.stratified;
  Alcotest.(check bool) "rounds counted" true (!report.Datalog.Engine.rounds > 1);
  Alcotest.(check bool) "derived counted" true (!report.Datalog.Engine.derived >= 6);
  Alcotest.(check bool) "joins counted" true (!report.Datalog.Engine.joins > 0)

let test_dot_export () =
  let dm =
    Domain_map.Register.register Neuro.Anatom.fig3_base
      Neuro.Anatom.fig3_registration
    |> Result.get_ok
    |> fun o -> o.Domain_map.Register.dmap
  in
  let dot = Domain_map.Dmap.to_dot ~highlight:[ "my_neuron"; "my_dendrite" ] dm in
  List.iter
    (fun needle ->
      let contains =
        let hn = String.length dot and nn = String.length needle in
        let rec go i = i + nn <= hn && (String.sub dot i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("dot contains " ^ needle) true contains)
    [
      "digraph domain_map";
      "\"my_neuron\" [shape=box, style=filled";
      "label=\"proj\"";
      "shape=diamond, label=\"OR\"";
      "arrowhead=empty";
      "label=\"ALL:has\"";
    ]

(* the Section 4 nonmonotonic-inheritance remark, run end to end: with
   fig3 knowledge, MyNeuron should inherit the MSN "possible
   projection" defaults but its own definite projection wins. *)
let test_nonmon_projection_defaults () =
  let default c m value =
    Molecule.fact (Molecule.pred Gcm_axioms.default_p [ s c; s m; s value ])
  in
  let rules =
    [
      Molecule.fact (Molecule.sub (s "my_neuron") (s "medium_spiny_neuron"));
      Molecule.fact (Molecule.isa (s "cell1") (s "my_neuron"));
      Molecule.fact (Molecule.isa (s "cell2") (s "medium_spiny_neuron"));
      default "medium_spiny_neuron" "projects_to" "some_of_four_targets";
      default "my_neuron" "projects_to" "globus_pallidus_external";
    ]
  in
  let t = Fl_program.make ~inheritance:true rules in
  let db = Fl_program.run t in
  let proj x =
    Fl_program.query t db
      [ Molecule.Pos (Molecule.meth_val (s x) "projects_to" (v "T")) ]
    |> List.filter_map (fun sub -> Term.as_sym (Logic.Subst.apply sub (v "T")))
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string)) "specific default wins"
    [ "globus_pallidus_external" ] (proj "cell1");
  Alcotest.(check (list string)) "base default for plain MSN"
    [ "some_of_four_targets" ] (proj "cell2")

(* Section 5 machinery is generic in organism and ion: mouse rows exist
   in the background circuits, and ion "none" selects the non-binders. *)
let test_section5_other_parameters () =
  let med =
    Neuro.Sources.standard_mediator { Neuro.Sources.seed = 23; scale = 40 }
  in
  (match
     Mediation.Section5.calcium_binding_query med ~organism:"mouse"
       ~transmitting_compartment:"parallel_fiber" ~ion:"calcium" ()
   with
  | Ok o ->
    Alcotest.(check bool) "mouse rows bind locations" true
      (o.Mediation.Section5.locations <> [])
  | Error e -> Alcotest.failf "mouse query failed: %s" e);
  match
    Mediation.Section5.calcium_binding_query med ~organism:"rat"
      ~transmitting_compartment:"parallel_fiber" ~ion:"none" ()
  with
  | Ok o ->
    let non_binders =
      List.filter
        (fun p -> not (List.mem p Neuro.Sources.calcium_binders))
        Neuro.Sources.proteins
      |> List.sort String.compare
    in
    Alcotest.(check (list string)) "ion=none returns the non-binders"
      non_binders o.Mediation.Section5.proteins
  | Error e -> Alcotest.failf "ion=none query failed: %s" e

let test_region_restrict_and_glb_edges () =
  let dm = Neuro.Anatom.fig1 in
  let r = Domain_map.Region.downward dm ~root:"dendrite" () in
  let r' = Domain_map.Region.restrict r ~to_:[ "dendrite"; "spine" ] in
  Alcotest.(check int) "restricted" 2 (Domain_map.Region.size r');
  Alcotest.(check (list string)) "glb of unrelated" []
    (Domain_map.Lub.glb dm [ "soma"; "protein" ]);
  Alcotest.(check (list string)) "glb with self" [ "spine" ]
    (Domain_map.Lub.glb dm [ "spine"; "spine" ])

let suites =
  [
    ( "misc",
      [
        Alcotest.test_case "fl wellfounded total" `Quick test_fl_wellfounded_total;
        Alcotest.test_case "fl wellfounded 3-valued" `Quick test_fl_wellfounded_three_valued;
        Alcotest.test_case "engine report" `Quick test_engine_report;
        Alcotest.test_case "dot export" `Quick test_dot_export;
        Alcotest.test_case "nonmon projection defaults" `Quick test_nonmon_projection_defaults;
        Alcotest.test_case "section5 other parameters" `Quick test_section5_other_parameters;
        Alcotest.test_case "region/glb edges" `Quick test_region_restrict_and_glb_edges;
      ] );
  ]
