(* Tests for the description-logic library: concepts, EL-completion
   subsumption (Prop 1 guard), DL->FL translation in both modes. *)

open Dl

let n = Concept.name

(* -------------------------------------------------------------------- *)
(* Concept smart constructors *)

let test_conj_normalization () =
  Alcotest.(check string) "flatten" "(a AND b AND c)"
    (Concept.to_string (Concept.conj [ n "a"; Concept.conj [ n "b"; n "c" ] ]));
  Alcotest.(check string) "drop top" "a"
    (Concept.to_string (Concept.conj [ n "a"; Concept.Top ]));
  Alcotest.(check string) "bot collapses" "BOT"
    (Concept.to_string (Concept.conj [ n "a"; Concept.Bot ]));
  Alcotest.(check string) "empty conj is top" "TOP" (Concept.to_string (Concept.conj []));
  Alcotest.(check string) "dedup" "a" (Concept.to_string (Concept.conj [ n "a"; n "a" ]))

let test_disj_normalization () =
  Alcotest.(check string) "drop bot" "a"
    (Concept.to_string (Concept.disj [ n "a"; Concept.Bot ]));
  Alcotest.(check string) "top collapses" "TOP"
    (Concept.to_string (Concept.disj [ n "a"; Concept.Top ]))

let test_fragment_guard () =
  Alcotest.(check bool) "EL ok" true
    (Concept.is_el (Concept.conj [ n "a"; Concept.exists "r" (n "b") ]));
  Alcotest.(check (option string)) "Or flagged" (Some "disjunction (OR node)")
    (Concept.offending_feature (Concept.disj [ n "a"; n "b" ]));
  Alcotest.(check (option string)) "Forall flagged"
    (Some "value restriction (ALL edge)")
    (Concept.offending_feature (Concept.exists "r" (Concept.forall "s" (n "a"))))

let test_names_roles () =
  let c = Concept.conj [ n "a"; Concept.exists "r" (Concept.exists "s" (n "b")) ] in
  Alcotest.(check (list string)) "names" [ "a"; "b" ] (Concept.names c);
  Alcotest.(check (list string)) "roles" [ "r"; "s" ] (Concept.roles c)

(* -------------------------------------------------------------------- *)
(* EL completion reasoner *)

let tbox_basic =
  [
    Concept.subsumes (n "purkinje") (n "spiny_neuron");
    Concept.subsumes (n "spiny_neuron") (n "neuron");
    Concept.subsumes (n "neuron") (Concept.exists "has" (n "compartment"));
    Concept.equiv (n "spiny2") (Concept.conj [ n "neuron"; Concept.exists "has" (n "spine") ]);
    Concept.subsumes (n "spine") (n "compartment");
  ]

let classify_ok tbox =
  match Reason.classify tbox with
  | Ok t -> t
  | Error f -> Alcotest.failf "classification failed: %s" f

let test_reason_hierarchy () =
  let t = classify_ok tbox_basic in
  Alcotest.(check bool) "direct" true (Reason.subsumes t "purkinje" "spiny_neuron");
  Alcotest.(check bool) "transitive" true (Reason.subsumes t "purkinje" "neuron");
  Alcotest.(check bool) "reflexive" true (Reason.subsumes t "neuron" "neuron");
  Alcotest.(check bool) "not upward" false (Reason.subsumes t "neuron" "purkinje")

let test_reason_existential () =
  let t = classify_ok tbox_basic in
  (* spiny2 == neuron ⊓ ∃has.spine: anything that is a neuron with a
     spine must be classified under spiny2. *)
  let tbox2 =
    tbox_basic
    @ [
        Concept.subsumes (n "cell_x") (n "neuron");
        Concept.subsumes (n "cell_x") (Concept.exists "has" (n "spine"));
      ]
  in
  let t2 = classify_ok tbox2 in
  Alcotest.(check bool) "defined concept recognised" true
    (Reason.subsumes t2 "cell_x" "spiny2");
  Alcotest.(check bool) "no spurious subsumption" false
    (Reason.subsumes t "purkinje" "spiny2")

let test_reason_filler_monotone () =
  (* ∃has.purkinje ⊑ ∃has.neuron via CR-rules with a defined concept. *)
  let tbox =
    tbox_basic
    @ [
        Concept.equiv (n "has_neuron") (Concept.exists "has" (n "neuron"));
        Concept.subsumes (n "owner") (Concept.exists "has" (n "purkinje"));
      ]
  in
  let t = classify_ok tbox in
  Alcotest.(check bool) "filler subsumption lifts" true
    (Reason.subsumes t "owner" "has_neuron")

let test_reason_bot () =
  let tbox =
    [
      Concept.subsumes (n "a") (n "b");
      Concept.subsumes (Concept.conj [ n "b"; n "c" ]) Concept.Bot;
      Concept.subsumes (n "d") (Concept.conj [ n "a"; n "c" ]);
    ]
  in
  let t = classify_ok tbox in
  Alcotest.(check bool) "d unsatisfiable" true (Reason.unsatisfiable t "d");
  Alcotest.(check bool) "a satisfiable" false (Reason.unsatisfiable t "a");
  (* bot propagates over roles: anything with an impossible part is
     impossible. *)
  let tbox2 = tbox @ [ Concept.subsumes (n "e") (Concept.exists "has" (n "d")) ] in
  let t2 = classify_ok tbox2 in
  Alcotest.(check bool) "role propagation of bot" true (Reason.unsatisfiable t2 "e")

let test_reason_outside_fragment () =
  match Reason.classify [ Concept.subsumes (n "a") (Concept.disj [ n "b"; n "c" ]) ] with
  | Error f -> Alcotest.(check string) "feature named" "disjunction (OR node)" f
  | Ok _ -> Alcotest.fail "Or must be rejected"

let test_reason_check_complex () =
  let tbox = tbox_basic in
  (match Reason.check ~tbox (Concept.conj [ n "neuron"; Concept.exists "has" (n "spine") ]) (n "spiny2") with
  | Reason.Subsumed -> ()
  | _ -> Alcotest.fail "complex lhs check");
  (match Reason.check ~tbox (n "purkinje") (Concept.exists "has" (n "compartment")) with
  | Reason.Subsumed -> ()
  | _ -> Alcotest.fail "complex rhs check");
  match Reason.check ~tbox (n "a") (Concept.forall "r" (n "b")) with
  | Reason.Outside_fragment _ -> ()
  | _ -> Alcotest.fail "forall must be flagged"

let test_reason_satisfiable () =
  Alcotest.(check (result bool string)) "plain concept satisfiable" (Ok true)
    (Reason.satisfiable ~tbox:tbox_basic (n "purkinje"));
  let tbox = [ Concept.subsumes (n "a") Concept.Bot ] in
  Alcotest.(check (result bool string)) "bot-forced unsat" (Ok false)
    (Reason.satisfiable ~tbox (n "a"))

(* Property: subsumption on random EL tboxes is reflexive and transitive. *)
let prop_subsumption_preorder =
  let gen_tbox =
    let open QCheck.Gen in
    let cname = map (Printf.sprintf "k%d") (int_bound 7) in
    let role = oneofl [ "r"; "s" ] in
    let concept =
      sized_size (int_bound 3) @@ fix (fun self depth ->
        if depth = 0 then map Concept.name cname
        else
          frequency
            [
              (3, map Concept.name cname);
              (2, map2 (fun a b -> Concept.conj [ a; b ]) (self (depth - 1)) (self (depth - 1)));
              (2, map2 Concept.exists role (self (depth - 1)));
            ])
    in
    list_size (int_range 1 10)
      (map2 (fun c d -> Concept.subsumes c d) concept concept)
  in
  QCheck.Test.make ~name:"EL subsumption is a preorder" ~count:60
    (QCheck.make gen_tbox)
    (fun tbox ->
      match Reason.classify tbox with
      | Error _ -> false
      | Ok t ->
        let names = Reason.concept_names t in
        List.for_all (fun a -> Reason.subsumes t a a) names
        && List.for_all
             (fun a ->
               List.for_all
                 (fun b ->
                   List.for_all
                     (fun c ->
                       (not (Reason.subsumes t a b && Reason.subsumes t b c))
                       || Reason.subsumes t a c)
                     names)
                 names)
             names)

(* -------------------------------------------------------------------- *)
(* Translation *)

let s = Logic.Term.sym
let v = Logic.Term.var

let run_fl rules facts =
  Flogic.Fl_program.run
    (Flogic.Fl_program.make (rules @ List.map Flogic.Molecule.fact facts))

let test_translate_isa_fact () =
  let out = Translate.axiom ~mode:Translate.Ic (Concept.subsumes (n "a") (n "b")) in
  Alcotest.(check int) "single fact" 1 (List.length out.Translate.rules);
  Alcotest.(check (list string)) "no warnings" [] out.Translate.warnings

let test_translate_ex_ic () =
  (* dendrite ⊑ ∃has.branch as IC: object base must witness a branch. *)
  let out =
    Translate.axiom ~mode:Translate.Ic
      (Concept.subsumes (n "dendrite") (Concept.exists "has" (n "branch")))
  in
  let facts_ok =
    [
      Flogic.Molecule.isa (s "d1") (s "dendrite");
      Flogic.Molecule.isa (s "b1") (s "branch");
      Flogic.Molecule.pred "has" [ s "d1"; s "b1" ];
    ]
  in
  Alcotest.(check bool) "witnessed: consistent" true
    (Flogic.Ic.consistent (run_fl out.Translate.rules facts_ok));
  let facts_bad = [ Flogic.Molecule.isa (s "d1") (s "dendrite") ] in
  let db = run_fl out.Translate.rules facts_bad in
  Alcotest.(check bool) "unwitnessed: violation" false (Flogic.Ic.consistent db)

let test_translate_ex_assertion () =
  (* Assertion mode creates the placeholder f_C_r_D(x). *)
  let out =
    Translate.axiom ~mode:Translate.Assertion
      (Concept.subsumes (n "dendrite") (Concept.exists "has" (n "branch")))
  in
  let db = run_fl out.Translate.rules [ Flogic.Molecule.isa (s "d1") (s "dendrite") ] in
  let branches =
    Flogic.Fl_program.instances_of db "branch"
  in
  (match branches with
  | [ b ] ->
    Alcotest.(check bool) "placeholder object" true (Translate.is_placeholder b)
  | _ -> Alcotest.failf "expected 1 branch, got %d" (List.length branches));
  (* and the role edge exists *)
  let t = Flogic.Fl_program.make [] in
  Alcotest.(check int) "has edge" 1
    (List.length
       (Flogic.Fl_program.query t db
          [ Flogic.Molecule.Pos (Flogic.Molecule.pred "has" [ s "d1"; v "Y" ]) ]))

let test_translate_assertion_no_duplicate () =
  (* If a real witness exists, no placeholder is created. *)
  let out =
    Translate.axiom ~mode:Translate.Assertion
      (Concept.subsumes (n "dendrite") (Concept.exists "has" (n "branch")))
  in
  let db =
    run_fl out.Translate.rules
      [
        Flogic.Molecule.isa (s "d1") (s "dendrite");
        Flogic.Molecule.isa (s "b1") (s "branch");
        Flogic.Molecule.pred "has" [ s "d1"; s "b1" ];
      ]
  in
  Alcotest.(check int) "only the real branch" 1
    (List.length (Flogic.Fl_program.instances_of db "branch"))

let test_translate_forall () =
  (* MyNeuron ⊑ ∀has.MyDendrite — assertion propagates; IC witnesses. *)
  let ax = Concept.subsumes (n "my_neuron") (Concept.forall "has" (n "my_dendrite")) in
  let base =
    [
      Flogic.Molecule.isa (s "n1") (s "my_neuron");
      Flogic.Molecule.pred "has" [ s "n1"; s "d1" ];
    ]
  in
  let out_a = Translate.axiom ~mode:Translate.Assertion ax in
  let db_a = run_fl out_a.Translate.rules base in
  Alcotest.(check bool) "assertion types successor" true
    (List.mem (s "d1") (Flogic.Fl_program.instances_of db_a "my_dendrite"));
  let out_ic = Translate.axiom ~mode:Translate.Ic ax in
  let db_ic = run_fl out_ic.Translate.rules base in
  Alcotest.(check bool) "IC flags untyped successor" false
    (Flogic.Ic.consistent db_ic)

let test_translate_or_ic () =
  (* C ⊑ D1 ⊔ D2 checkable as IC, not assertable. *)
  let ax = Concept.subsumes (n "msn") (Concept.disj [ n "gpe"; n "gpi" ]) in
  let out_ic = Translate.axiom ~mode:Translate.Ic ax in
  let ok =
    run_fl out_ic.Translate.rules
      [ Flogic.Molecule.isa (s "m1") (s "msn"); Flogic.Molecule.isa (s "m1") (s "gpe") ]
  in
  Alcotest.(check bool) "disjunct satisfied" true (Flogic.Ic.consistent ok);
  let bad = run_fl out_ic.Translate.rules [ Flogic.Molecule.isa (s "m1") (s "msn") ] in
  Alcotest.(check bool) "no disjunct: violation" false (Flogic.Ic.consistent bad);
  let out_a = Translate.axiom ~mode:Translate.Assertion ax in
  Alcotest.(check bool) "assertion warns" true (out_a.Translate.warnings <> [])

let test_translate_complex_lhs () =
  (* ∃has.spine ⊓ neuron ⊑ spiny: recognition of complex LHS. *)
  let ax =
    Concept.subsumes
      (Concept.conj [ n "neuron"; Concept.exists "has" (n "spine") ])
      (n "spiny")
  in
  let out = Translate.axiom ~mode:Translate.Assertion ax in
  let db =
    run_fl out.Translate.rules
      [
        Flogic.Molecule.isa (s "n1") (s "neuron");
        Flogic.Molecule.isa (s "sp") (s "spine");
        Flogic.Molecule.pred "has" [ s "n1"; s "sp" ];
        Flogic.Molecule.isa (s "n2") (s "neuron");
      ]
  in
  Alcotest.(check bool) "n1 classified" true
    (List.mem (s "n1") (Flogic.Fl_program.instances_of db "spiny"));
  Alcotest.(check bool) "n2 not classified" false
    (List.mem (s "n2") (Flogic.Fl_program.instances_of db "spiny"))

let test_translate_skolem_name () =
  Alcotest.(check string) "paper naming" "f_dendrite_has_branch"
    (Translate.skolem_name "dendrite" "has" "branch")

let suites =
  [
    ( "dl.concept",
      [
        Alcotest.test_case "conj normalization" `Quick test_conj_normalization;
        Alcotest.test_case "disj normalization" `Quick test_disj_normalization;
        Alcotest.test_case "fragment guard" `Quick test_fragment_guard;
        Alcotest.test_case "names/roles" `Quick test_names_roles;
      ] );
    ( "dl.reason",
      [
        Alcotest.test_case "hierarchy" `Quick test_reason_hierarchy;
        Alcotest.test_case "existential defs" `Quick test_reason_existential;
        Alcotest.test_case "filler monotone" `Quick test_reason_filler_monotone;
        Alcotest.test_case "bot propagation" `Quick test_reason_bot;
        Alcotest.test_case "outside fragment" `Quick test_reason_outside_fragment;
        Alcotest.test_case "complex check" `Quick test_reason_check_complex;
        Alcotest.test_case "satisfiability" `Quick test_reason_satisfiable;
        QCheck_alcotest.to_alcotest prop_subsumption_preorder;
      ] );
    ( "dl.translate",
      [
        Alcotest.test_case "isa fact" `Quick test_translate_isa_fact;
        Alcotest.test_case "ex as IC" `Quick test_translate_ex_ic;
        Alcotest.test_case "ex as assertion" `Quick test_translate_ex_assertion;
        Alcotest.test_case "no duplicate skolems" `Quick test_translate_assertion_no_duplicate;
        Alcotest.test_case "forall both modes" `Quick test_translate_forall;
        Alcotest.test_case "or as IC only" `Quick test_translate_or_ic;
        Alcotest.test_case "complex lhs" `Quick test_translate_complex_lhs;
        Alcotest.test_case "skolem naming" `Quick test_translate_skolem_name;
      ] );
  ]
