(* Tests for the Neuroscience scenario: ANATOM content, generator
   determinism, and the synthetic sources' shape. *)

open Kind.Neuro
module Dmap = Domain_map.Dmap
module Closure = Domain_map.Closure
module Source = Wrapper.Source
module Store = Wrapper.Store

(* -------------------------------------------------------------------- *)
(* ANATOM *)

let test_fig1_axiom_count () =
  (* Example 1 prints 11 DL statement lines; we encode 14 axioms
     (conjunction on the right of [isa] keeps a single axiom; the
     multi-class lines split). All must survive the graph reading. *)
  Alcotest.(check int) "axioms encoded" 14 (List.length Anatom.fig1_axioms);
  match Dmap.validate Anatom.fig1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fig1 invalid: %s" e

let test_full_map_merges () =
  (match Dmap.validate Anatom.full with
  | Ok () -> ()
  | Error e -> Alcotest.failf "full map invalid: %s" e);
  (* fig1 and fig3 worlds are connected in the merged map *)
  Alcotest.(check bool) "purkinje in full" true (Dmap.mem Anatom.full "purkinje_cell");
  Alcotest.(check bool) "msn in full" true
    (Dmap.mem Anatom.full "medium_spiny_neuron");
  Alcotest.(check bool) "parallel fiber extension present" true
    (Dmap.mem Anatom.full "parallel_fiber");
  (* cerebellum region covers purkinje cells but not pyramidal ones *)
  let region = Closure.reachable (Closure.traversal Anatom.full) "cerebellum" in
  Alcotest.(check bool) "purkinje under cerebellum" true
    (List.mem "purkinje_cell" region);
  Alcotest.(check bool) "pyramidal not under cerebellum" false
    (List.mem "pyramidal_cell" region)

let test_sprawl_deterministic () =
  let a = Anatom.sprawl ~concepts:100 ~seed:5 in
  let b = Anatom.sprawl ~concepts:100 ~seed:5 in
  let c = Anatom.sprawl ~concepts:100 ~seed:6 in
  Alcotest.(check bool) "same seed, same map" true
    (Dmap.edges a = Dmap.edges b);
  Alcotest.(check bool) "different seed, different map" false
    (Dmap.edges a = Dmap.edges c);
  let nodes, edges = Dmap.size a in
  Alcotest.(check int) "requested concepts" 100 nodes;
  Alcotest.(check bool) "edges present" true (edges >= 99)

let test_sprawl_valid_and_acyclic () =
  let dm = Anatom.sprawl ~concepts:200 ~seed:9 in
  (match Dmap.validate dm with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sprawl invalid: %s" e);
  (* the isa forest construction cannot create cycles *)
  let tc = Closure.isa_tc dm in
  Alcotest.(check bool) "isa acyclic" false
    (List.exists (fun (a, b) -> a = b) tc)

(* -------------------------------------------------------------------- *)
(* Sources *)

let params = { Sources.seed = 17; scale = 30 }

let test_sources_deterministic () =
  let count src =
    Datalog.Database.cardinal (Store.database (Source.store src))
  in
  Alcotest.(check int) "synapse deterministic"
    (count (Sources.synapse params))
    (count (Sources.synapse params));
  Alcotest.(check bool) "seed changes data" true
    (Datalog.Database.all_facts
       (Store.database (Source.store (Sources.synapse params)))
    <> Datalog.Database.all_facts
         (Store.database (Source.store (Sources.synapse { params with Sources.seed = 18 }))))

let test_senselab_has_query_rows () =
  (* the Section 5 query needs rat + parallel_fiber rows *)
  let src = Sources.senselab params in
  let rows =
    Source.fetch_instances src ~cls:"neurotransmission"
      ~selections:
        [
          ("organism", Logic.Literal.Eq, Logic.Term.str "rat");
          ("transmitting_compartment", Logic.Literal.Eq, Logic.Term.sym "parallel_fiber");
        ]
  in
  Alcotest.(check bool) "parallel-fiber rows exist" true (rows <> []);
  (* receiving fields are DM concepts *)
  List.iter
    (fun (o : Store.obj) ->
      List.iter
        (fun (m, v) ->
          if m = "receiving_neuron" || m = "receiving_compartment" then
            match Logic.Term.as_sym v with
            | Some c ->
              Alcotest.(check bool) (c ^ " is a DM concept") true
                (Dmap.mem Anatom.full c)
            | None -> Alcotest.fail "receiving field is not a symbol")
        o.Store.values)
    rows

let test_ncmir_covers_query_locations () =
  let src = Sources.ncmir params in
  List.iter
    (fun loc ->
      let rows =
        Source.fetch_instances src ~cls:"protein_amount"
          ~selections:[ ("location", Logic.Literal.Eq, Logic.Term.sym loc) ]
      in
      Alcotest.(check bool) ("amounts at " ^ loc) true (rows <> []))
    [ "purkinje_cell"; "spine"; "dendrite" ];
  (* every calcium binder has metadata *)
  let binders =
    Source.fetch_instances src ~cls:"protein"
      ~selections:[ ("ion_bound", Logic.Literal.Eq, Logic.Term.sym "calcium") ]
  in
  Alcotest.(check int) "calcium binders"
    (List.length Sources.calcium_binders)
    (List.length binders)

let test_scale_scales () =
  let small = Sources.ncmir { params with Sources.scale = 20 } in
  let large = Sources.ncmir { params with Sources.scale = 200 } in
  let count src = Store.object_count (Source.store src) ~cls:"protein_amount" in
  Alcotest.(check bool) "scale grows data" true (count large > 2 * count small)

let test_distractor_disjoint () =
  let d = Sources.distractor params ~index:1 in
  (* distractor anchors must not cover the Section 5 pair concepts *)
  let med = Mediation.Mediator.create Anatom.full in
  (match Mediation.Mediator.register_source med d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "register failed: %s" e);
  Alcotest.(check (list string)) "not selected for the query pairs" []
    (Mediation.Mediator.select_sources_for_pairs med
       ~pairs:[ ("purkinje_cell", "spine") ])

let test_schemas_validate () =
  List.iter
    (fun src ->
      match Gcm.Schema.validate (Source.schema src) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s schema invalid: %s" (Source.name src) e)
    [
      Sources.synapse params;
      Sources.ncmir params;
      Sources.senselab params;
      Sources.distractor params ~index:3;
    ]

let suites =
  [
    ( "neuro.anatom",
      [
        Alcotest.test_case "fig1 axioms" `Quick test_fig1_axiom_count;
        Alcotest.test_case "full map" `Quick test_full_map_merges;
        Alcotest.test_case "sprawl determinism" `Quick test_sprawl_deterministic;
        Alcotest.test_case "sprawl validity" `Quick test_sprawl_valid_and_acyclic;
      ] );
    ( "neuro.sources",
      [
        Alcotest.test_case "determinism" `Quick test_sources_deterministic;
        Alcotest.test_case "senselab rows" `Quick test_senselab_has_query_rows;
        Alcotest.test_case "ncmir coverage" `Quick test_ncmir_covers_query_locations;
        Alcotest.test_case "scaling" `Quick test_scale_scales;
        Alcotest.test_case "distractor disjoint" `Quick test_distractor_disjoint;
        Alcotest.test_case "schemas validate" `Quick test_schemas_validate;
      ] );
  ]
