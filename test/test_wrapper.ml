(* Tests for the wrapper layer: stores, capabilities, sources. *)

open Wrapper
module Molecule = Flogic.Molecule

let s = Logic.Term.sym
let f = Logic.Term.float

let sg = Flogic.Signature.declare "has" [ "whole"; "part" ] Flogic.Signature.empty

(* -------------------------------------------------------------------- *)
(* Store *)

let sample_store () =
  let st = Store.create ~signature:sg () in
  Store.add_instance st (s "s1") ~cls:"spine";
  Store.add_instance st (s "s2") ~cls:"spine";
  Store.add_value st (s "s1") ~meth:"diameter" (f 0.3);
  Store.add_value st (s "s2") ~meth:"diameter" (f 0.8);
  Store.add_tuple st ~rel:"has" [ ("whole", s "d1"); ("part", s "s1") ];
  Store.add_tuple st ~rel:"has" [ ("whole", s "d1"); ("part", s "s2") ];
  st

let test_store_instances () =
  let st = sample_store () in
  Alcotest.(check int) "all spines" 2
    (List.length (Store.instances st ~cls:"spine" ~selections:[]));
  let wide =
    Store.instances st ~cls:"spine"
      ~selections:[ ("diameter", Logic.Literal.Gt, f 0.5) ]
  in
  (match wide with
  | [ o ] -> Alcotest.(check bool) "s2 selected" true (Logic.Term.equal o.Store.id (s "s2"))
  | _ -> Alcotest.fail "expected one wide spine");
  Alcotest.(check int) "counts" 2 (Store.object_count st ~cls:"spine");
  Alcotest.(check int) "tuples" 2 (Store.tuple_count st ~rel:"has")

let test_store_tuples () =
  let st = sample_store () in
  Alcotest.(check int) "pattern match" 2
    (List.length (Store.tuples st ~rel:"has" ~pattern:[ ("whole", s "d1") ]));
  Alcotest.(check int) "bound part" 1
    (List.length (Store.tuples st ~rel:"has" ~pattern:[ ("part", s "s1") ]));
  Alcotest.check_raises "unknown relation"
    (Invalid_argument "Store.add_tuple: unknown relation nope") (fun () ->
      Store.add_tuple st ~rel:"nope" [ ("a", s "x") ]);
  Alcotest.check_raises "missing attribute"
    (Invalid_argument "Store.add_tuple: has is missing attribute part")
    (fun () -> Store.add_tuple st ~rel:"has" [ ("whole", s "x") ])

(* -------------------------------------------------------------------- *)
(* Capabilities *)

let caps =
  [
    Capability.scan_class "spine";
    Capability.select_class ~cls:"spine" ~on:[ "diameter" ];
    Capability.bind_relation ~rel:"has"
      ~pattern:[ Capability.Bound; Capability.Free ];
    Capability.template ~name:"wide" ~params:[ "min" ]
      ~body:"X : spine, X[diameter ->> D], D > $min";
  ]

let test_capability_checks () =
  Alcotest.(check bool) "scan spine" true (Capability.can_scan_class caps "spine");
  Alcotest.(check bool) "no scan dendrite" false
    (Capability.can_scan_class caps "dendrite");
  Alcotest.(check (list string)) "pushable" [ "diameter" ]
    (Capability.pushable_selections caps ~cls:"spine");
  Alcotest.(check bool) "bf admitted" true
    (Capability.admits_pattern caps ~rel:"has" ~bound:[ true; false ]);
  Alcotest.(check bool) "bb admitted (stronger)" true
    (Capability.admits_pattern caps ~rel:"has" ~bound:[ true; true ]);
  Alcotest.(check bool) "ff rejected" false
    (Capability.admits_pattern caps ~rel:"has" ~bound:[ false; false ]);
  Alcotest.(check bool) "template found" true
    (Capability.find_template caps "wide" <> None)

(* -------------------------------------------------------------------- *)
(* Source *)

let spine_schema =
  Gcm.Schema.make ~name:"LAB"
    ~classes:[ Gcm.Schema.class_def "spine" ~methods:[ ("diameter", "number") ] ]
    ~relations:[ ("has", [ ("whole", "thing"); ("part", "thing") ]) ]
    ()

let sample_source ?capabilities () =
  Source.make ~name:"LAB" ~schema:spine_schema ?capabilities
    ~anchors:[ ("spine", "spine", []) ]
    ~data:
      [
        Molecule.Isa (s "s1", s "spine");
        Molecule.Meth_val (s "s1", "diameter", f 0.3);
        Molecule.Isa (s "s2", s "spine");
        Molecule.Meth_val (s "s2", "diameter", f 0.8);
        Molecule.Rel_val ("has", [ ("whole", s "d1"); ("part", s "s1") ]);
      ]
    ()

let test_source_fetch_scan () =
  let src = sample_source () in
  (* default capabilities: scan everything, push nothing *)
  Alcotest.(check int) "scan" 2
    (List.length (Source.fetch_instances src ~cls:"spine" ~selections:[]));
  (match
     Source.fetch_instances src ~cls:"spine"
       ~selections:[ ("diameter", Logic.Literal.Gt, f 0.5) ]
   with
  | exception Source.Unsupported _ -> ()
  | _ -> Alcotest.fail "default caps must not push selections");
  match Source.fetch_instances src ~cls:"nope" ~selections:[] with
  | exception Source.Unsupported _ -> ()
  | _ -> Alcotest.fail "unknown class must be refused"

let test_source_fetch_select () =
  let src =
    sample_source
      ~capabilities:
        [
          Capability.scan_class "spine";
          Capability.select_class ~cls:"spine" ~on:[ "diameter" ];
          Capability.scan_relation "has";
        ]
      ()
  in
  Alcotest.(check int) "pushed selection" 1
    (List.length
       (Source.fetch_instances src ~cls:"spine"
          ~selections:[ ("diameter", Logic.Literal.Gt, f 0.5) ]));
  Alcotest.(check int) "tuples" 1
    (List.length (Source.fetch_tuples src ~rel:"has" ~pattern:[]));
  (* meter counts shipped rows *)
  Alcotest.(check int) "meter tuples" 2 (Source.served src).Source.tuples;
  Alcotest.(check int) "meter requests" 2 (Source.served src).Source.requests;
  Source.reset_meter src;
  Alcotest.(check int) "meter reset" 0 (Source.served src).Source.tuples

let test_source_binding_pattern () =
  let src =
    sample_source
      ~capabilities:
        [
          Capability.bind_relation ~rel:"has"
            ~pattern:[ Capability.Bound; Capability.Free ];
        ]
      ()
  in
  Alcotest.(check int) "bf access" 1
    (List.length (Source.fetch_tuples src ~rel:"has" ~pattern:[ ("whole", s "d1") ]));
  match Source.fetch_tuples src ~rel:"has" ~pattern:[] with
  | exception Source.Unsupported _ -> ()
  | _ -> Alcotest.fail "ff access must be refused"

let test_source_template () =
  let src =
    sample_source
      ~capabilities:
        [
          Capability.template ~name:"wide" ~params:[ "min" ]
            ~body:"X : spine, X[diameter ->> D], D > $min";
        ]
      ()
  in
  let answers = Source.run_template src ~name:"wide" ~args:[ ("min", f 0.5) ] in
  Alcotest.(check int) "one wide spine" 1 (List.length answers);
  (match Source.run_template src ~name:"wide" ~args:[] with
  | exception Source.Unsupported _ -> ()
  | _ -> Alcotest.fail "missing arg must be refused");
  match Source.run_template src ~name:"nope" ~args:[] with
  | exception Source.Unsupported _ -> ()
  | _ -> Alcotest.fail "unknown template must be refused"

let test_source_export_xml () =
  let src = sample_source () in
  let doc = Source.export_xml src in
  (* re-import through the plug-in machinery *)
  let reg = Cm_plugins.Defaults.registry () in
  match Cm_plugins.Plugin.translate reg ~format:"gcm-xml" doc with
  | Error e -> Alcotest.failf "re-import failed: %s" e
  | Ok tr ->
    Alcotest.(check (list string)) "classes survive the wire" [ "spine" ]
      (Gcm.Schema.class_names tr.Cm_plugins.Plugin.schema);
    Alcotest.(check int) "facts survive the wire" 5
      (List.length tr.Cm_plugins.Plugin.facts);
    Alcotest.(check bool) "anchors survive the wire" true
      (tr.Cm_plugins.Plugin.anchors = [ ("spine", "spine", []) ])

let suites =
  [
    ( "wrapper.store",
      [
        Alcotest.test_case "instances" `Quick test_store_instances;
        Alcotest.test_case "tuples" `Quick test_store_tuples;
      ] );
    ( "wrapper.capability",
      [ Alcotest.test_case "checks" `Quick test_capability_checks ] );
    ( "wrapper.source",
      [
        Alcotest.test_case "scan + refusal" `Quick test_source_fetch_scan;
        Alcotest.test_case "selection pushdown" `Quick test_source_fetch_select;
        Alcotest.test_case "binding patterns" `Quick test_source_binding_pattern;
        Alcotest.test_case "templates" `Quick test_source_template;
        Alcotest.test_case "wire export" `Quick test_source_export_xml;
      ] );
  ]
