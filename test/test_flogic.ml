(* Tests for the F-logic layer: compilation (Table 1), GCM axioms,
   nonmonotonic inheritance, integrity witnesses, surface parser. *)

open Logic
open Flogic

let v = Term.var
let s = Term.sym

let run ?(inheritance = false) ?signature rules =
  Fl_program.run (Fl_program.make ~inheritance ?signature rules)

let prog ?signature rules = Fl_program.make ?signature rules

(* -------------------------------------------------------------------- *)
(* Compilation *)

let test_compile_head_body_asymmetry () =
  let sg = Signature.empty in
  let heads = Compile.head_atoms sg (Molecule.isa (s "x") (s "c")) in
  Alcotest.(check (list string)) "head writes isa_d" [ "isa_d(x, c)" ]
    (List.map Atom.to_string heads);
  let body = Compile.body_literals sg (Molecule.Pos (Molecule.isa (v "X") (s "c"))) in
  Alcotest.(check (list string)) "body reads isa" [ "isa(X, c)" ]
    (List.map Literal.to_string body)

let test_compile_rel_val () =
  let sg = Signature.declare "has" [ "whole"; "part" ] Signature.empty in
  let atoms =
    Compile.head_atoms sg (Molecule.Rel_val ("has", [ ("whole", s "n"); ("part", s "a") ]))
  in
  Alcotest.(check (list string)) "positional layout" [ "has(n, a)" ]
    (List.map Atom.to_string atoms);
  (* order of named attributes must not matter *)
  let atoms2 =
    Compile.head_atoms sg (Molecule.Rel_val ("has", [ ("part", s "a"); ("whole", s "n") ]))
  in
  Alcotest.(check (list string)) "order independent" [ "has(n, a)" ]
    (List.map Atom.to_string atoms2)

let test_compile_rel_val_partial_body () =
  let sg = Signature.declare "has" [ "whole"; "part" ] Signature.empty in
  match Compile.body_literals sg (Molecule.Pos (Molecule.Rel_val ("has", [ ("part", v "P") ]))) with
  | [ Literal.Pos a ] ->
    Alcotest.(check int) "arity padded" 2 (List.length a.Atom.args);
    (match a.Atom.args with
    | [ Term.Var _; Term.Var "P" ] -> ()
    | _ -> Alcotest.failf "unexpected args in %s" (Atom.to_string a))
  | _ -> Alcotest.fail "expected single positive literal"

let test_compile_rel_errors () =
  let sg = Signature.declare "has" [ "whole"; "part" ] Signature.empty in
  let head_err m =
    match Compile.head_atoms sg m with
    | exception Compile.Compile_error _ -> ()
    | _ -> Alcotest.fail "expected Compile_error"
  in
  (* head must bind all attributes *)
  head_err (Molecule.Rel_val ("has", [ ("part", s "a") ]));
  (* unknown relation *)
  head_err (Molecule.Rel_val ("nope", [ ("a", s "a") ]));
  (* unknown attribute *)
  head_err (Molecule.Rel_val ("has", [ ("whole", s "a"); ("nope", s "b") ]));
  (* duplicate attribute *)
  head_err (Molecule.Rel_val ("has", [ ("whole", s "a"); ("whole", s "b") ]));
  (* negation of multi-atom molecule *)
  match
    Compile.body_literals sg
      (Molecule.Neg (Molecule.Rel_sig ("has", [ ("whole", s "c"); ("part", s "d") ])))
  with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected Compile_error on negated Rel_sig"

(* -------------------------------------------------------------------- *)
(* GCM axioms *)

let test_axioms_isa_propagation () =
  let rules =
    [
      Molecule.fact (Molecule.sub (s "purkinje") (s "neuron"));
      Molecule.fact (Molecule.sub (s "neuron") (s "cell"));
      Molecule.fact (Molecule.isa (s "p1") (s "purkinje"));
    ]
  in
  let db = run rules in
  let t = prog rules in
  Alcotest.(check bool) "transitive sub" true
    (Fl_program.holds t db (Molecule.sub (s "purkinje") (s "cell")));
  Alcotest.(check bool) "isa propagates up" true
    (Fl_program.holds t db (Molecule.isa (s "p1") (s "cell")));
  Alcotest.(check bool) "reflexive sub" true
    (Fl_program.holds t db (Molecule.sub (s "neuron") (s "neuron")));
  Alcotest.(check bool) "no downward isa" false
    (Fl_program.holds t db (Molecule.isa (s "p1") (s "nonexistent")))

let test_axioms_signature_inheritance () =
  let rules =
    [
      Molecule.fact (Molecule.sub (s "purkinje") (s "neuron"));
      Molecule.fact (Molecule.meth_sig (s "neuron") "soma_size" (s "number"));
    ]
  in
  let db = run rules in
  let t = prog rules in
  Alcotest.(check bool) "signature inherited down" true
    (Fl_program.holds t db (Molecule.meth_sig (s "purkinje") "soma_size" (s "number")))

let test_axioms_classhood () =
  let rules = [ Molecule.fact (Molecule.sub (s "a") (s "b")) ] in
  let db = run rules in
  let t = prog rules in
  Alcotest.(check bool) "subclass endpoints are classes" true
    (Fl_program.holds t db (Molecule.pred Compile.class_p [ s "a" ])
    && Fl_program.holds t db (Molecule.pred Compile.class_p [ s "b" ]))

let test_multi_head_rule () =
  (* D : c[m -> V] style: multi-head rule derives both facts. *)
  let rules =
    [
      Molecule.fact (Molecule.pred "obs" [ s "o1"; Term.int 42 ]);
      Molecule.rule_multi
        (Molecule.obj (v "X") (s "observation") [ ("value", v "V") ])
        [ Molecule.Pos (Molecule.pred "obs" [ v "X"; v "V" ]) ];
    ]
  in
  let db = run rules in
  let t = prog rules in
  Alcotest.(check bool) "isa head" true
    (Fl_program.holds t db (Molecule.isa (s "o1") (s "observation")));
  Alcotest.(check bool) "meth_val head" true
    (Fl_program.holds t db (Molecule.meth_val (s "o1") "value" (Term.int 42)))

let test_nonmonotonic_inheritance () =
  (* neuron has default location 'soma'; purkinje overrides with
     'cerebellum'; an instance-level declaration beats both. *)
  let default c m value =
    Molecule.fact (Molecule.pred Gcm_axioms.default_p [ s c; s m; s value ])
  in
  let rules =
    [
      Molecule.fact (Molecule.sub (s "purkinje") (s "neuron"));
      Molecule.fact (Molecule.isa (s "n1") (s "neuron"));
      Molecule.fact (Molecule.isa (s "p1") (s "purkinje"));
      Molecule.fact (Molecule.isa (s "p2") (s "purkinje"));
      Molecule.fact (Molecule.meth_val (s "p2") "location" (s "slice9"));
      default "neuron" "location" "soma";
      default "purkinje" "location" "cerebellum";
    ]
  in
  let db = run ~inheritance:true rules in
  let t = prog rules in
  let loc x = Fl_program.query t db
      [ Molecule.Pos (Molecule.meth_val (s x) "location" (v "L")) ]
    |> List.map (fun sub -> Term.to_string (Subst.apply sub (v "L")))
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string)) "base default" [ "soma" ] (loc "n1");
  Alcotest.(check (list string)) "specific override" [ "cerebellum" ] (loc "p1");
  Alcotest.(check (list string)) "instance override" [ "slice9" ] (loc "p2")

(* -------------------------------------------------------------------- *)
(* Integrity witnesses *)

let test_ic_witnesses () =
  let rules =
    [
      Molecule.fact (Molecule.pred "r" [ s "a"; s "b" ]);
      Molecule.fact (Molecule.pred "r" [ s "b"; s "a" ]);
      Ic.denial ~name:"w_cycle" ~args:[ v "X"; v "Y" ]
        [
          Molecule.Pos (Molecule.pred "r" [ v "X"; v "Y" ]);
          Molecule.Pos (Molecule.pred "r" [ v "Y"; v "X" ]);
          Molecule.Cmp (Literal.Lt, v "X", v "Y");
        ];
    ]
  in
  let db = run rules in
  Alcotest.(check bool) "inconsistent" false (Ic.consistent db);
  (match Ic.violations db with
  | [ w ] ->
    Alcotest.(check string) "witness name" "w_cycle" w.Ic.name;
    Alcotest.(check int) "witness args" 2 (List.length w.Ic.args)
  | ws -> Alcotest.failf "expected 1 witness, got %d" (List.length ws));
  Alcotest.(check (list (pair string int))) "by_constraint" [ ("w_cycle", 1) ]
    (Ic.by_constraint db)

let test_ic_clean () =
  let rules = [ Molecule.fact (Molecule.pred "r" [ s "a"; s "b" ]) ] in
  let db = run rules in
  Alcotest.(check bool) "consistent" true (Ic.consistent db)

(* -------------------------------------------------------------------- *)
(* Parser *)

let parse_ok ?signature src =
  match Fl_parser.parse_program ?signature src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parser_facts_rules () =
  let p =
    parse_ok
      {|
      % domain map fragment
      spine :: ion_regulating_component.
      s42 : spine.
      X[diameter ->> D] :- measured(X, D).
      spine[diameter => number].
      ?- X : spine.
      |}
  in
  Alcotest.(check int) "rules" 4 (List.length p.Fl_parser.rules);
  Alcotest.(check int) "queries" 1 (List.length p.Fl_parser.queries);
  let strs = List.map Molecule.rule_to_string p.Fl_parser.rules in
  Alcotest.(check bool) "sub parsed" true
    (List.mem "spine :: ion_regulating_component." strs);
  Alcotest.(check bool) "meth rule parsed" true
    (List.mem "X[diameter ->> D] :- measured(X, D)." strs)

let test_parser_relation_decl () =
  let p =
    parse_ok
      {|
      @relation has(whole, part).
      has[whole -> neuron1; part -> axon1].
      ?- has[part -> P].
      |}
  in
  Alcotest.(check bool) "signature declared" true
    (Signature.mem p.Fl_parser.signature "has");
  (* the fact must have compiled into a Rel_val, not meth_vals *)
  match p.Fl_parser.rules with
  | [ { Molecule.heads = [ Molecule.Rel_val ("has", _) ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected Rel_val fact"

let test_parser_object_sugar () =
  let p = parse_ok {| D : pd[name -> N; amount -> A] :- src(D, N, A). |} in
  match p.Fl_parser.rules with
  | [ { Molecule.heads; body } ] ->
    Alcotest.(check int) "three heads" 3 (List.length heads);
    Alcotest.(check int) "one body molecule" 1 (List.length body)
  | _ -> Alcotest.fail "expected one rule"

let test_parser_agg_arith_cmp () =
  let p =
    parse_ok
      {|
      big(B, N) :- N = count{X [B]; r(X, B)}, N > 2.
      doubled(Y) :- val(X), Y is X * 2 + 1.
      small(X) :- val(X), X =< 3, X =/= 2.
      |}
  in
  Alcotest.(check int) "three rules" 3 (List.length p.Fl_parser.rules);
  match p.Fl_parser.rules with
  | [ r1; _; r3 ] ->
    (match r1.Molecule.body with
    | [ Molecule.Agg a; Molecule.Cmp (Literal.Gt, _, _) ] ->
      Alcotest.(check int) "group by one var" 1 (List.length a.Molecule.group_by)
    | _ -> Alcotest.fail "agg rule body shape");
    (match r3.Molecule.body with
    | [ _; Molecule.Cmp (Literal.Le, _, _); Molecule.Cmp (Literal.Ne, _, _) ] -> ()
    | _ -> Alcotest.fail "cmp rule body shape")
  | _ -> Alcotest.fail "rule count"

let test_parser_quoted_and_strings () =
  let p = parse_ok {| loc(c1, 'Purkinje Cell'). name(c1, "a b"). |} in
  match p.Fl_parser.rules with
  | [ r1; r2 ] ->
    (match r1.Molecule.heads with
    | [ Molecule.Pred a ] ->
      Alcotest.(check string) "quoted symbol" "loc(c1, 'Purkinje Cell')"
        (Format.asprintf "%s(%s)" a.Atom.pred
           (String.concat ", "
              (List.map
                 (fun t ->
                   match t with
                   | Term.Const (Term.Sym x) when String.contains x ' ' ->
                     "'" ^ x ^ "'"
                   | t -> Term.to_string t)
                 a.Atom.args)))
    | _ -> Alcotest.fail "pred expected");
    (match r2.Molecule.heads with
    | [ Molecule.Pred a ] -> (
      match a.Atom.args with
      | [ _; Term.Const (Term.Str "a b") ] -> ()
      | _ -> Alcotest.fail "string arg expected")
    | _ -> Alcotest.fail "pred expected")
  | _ -> Alcotest.fail "two facts expected"

let test_parser_errors () =
  let bad src =
    match Fl_parser.parse_program src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %s" src
  in
  bad "p(X";
  bad "p(X) :- .";
  bad "p(X) q(X).";
  bad "?- not .";
  bad "@relation r(.";
  bad "p(X) :- X > .";
  bad "p(3) :- 3 + 4."

let test_parse_end_to_end () =
  (* Parse a program, run it, query it. *)
  let p =
    parse_ok
      {|
      @relation contains(spine, protein).
      contains[spine -> s1; protein -> ryr].
      contains[spine -> s2; protein -> ryr].
      contains[spine -> s2; protein -> ip3r].
      s1 : spine. s2 : spine.
      spine :: compartment.
      rich(S, N) :- S : spine, N = count{P [S]; contains[spine -> S; protein -> P]}, N >= 2.
      |}
  in
  let t = Fl_program.make ~signature:p.Fl_parser.signature p.Fl_parser.rules in
  let db = Fl_program.run t in
  Alcotest.(check bool) "s2 rich" true
    (Fl_program.holds t db (Molecule.pred "rich" [ s "s2"; Term.int 2 ]));
  Alcotest.(check bool) "s1 not rich" false
    (Fl_program.holds t db (Molecule.pred "rich" [ s "s1"; Term.int 1 ]));
  Alcotest.(check bool) "isa propagated" true
    (Fl_program.holds t db (Molecule.isa (s "s1") (s "compartment")))

let test_parse_term () =
  (match Fl_parser.parse_term "f(a, X, 3)" with
  | Ok (Term.App ("f", [ _; Term.Var "X"; _ ])) -> ()
  | _ -> Alcotest.fail "term parse");
  match Fl_parser.parse_term "f(a" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let suites =
  [
    ( "flogic.compile",
      [
        Alcotest.test_case "head/body asymmetry" `Quick test_compile_head_body_asymmetry;
        Alcotest.test_case "rel_val positional" `Quick test_compile_rel_val;
        Alcotest.test_case "rel_val partial body" `Quick test_compile_rel_val_partial_body;
        Alcotest.test_case "compile errors" `Quick test_compile_rel_errors;
      ] );
    ( "flogic.axioms",
      [
        Alcotest.test_case "isa propagation" `Quick test_axioms_isa_propagation;
        Alcotest.test_case "signature inheritance" `Quick test_axioms_signature_inheritance;
        Alcotest.test_case "classhood" `Quick test_axioms_classhood;
        Alcotest.test_case "multi-head rules" `Quick test_multi_head_rule;
        Alcotest.test_case "nonmonotonic inheritance" `Quick test_nonmonotonic_inheritance;
      ] );
    ( "flogic.ic",
      [
        Alcotest.test_case "witnesses" `Quick test_ic_witnesses;
        Alcotest.test_case "consistent" `Quick test_ic_clean;
      ] );
    ( "flogic.parser",
      [
        Alcotest.test_case "facts and rules" `Quick test_parser_facts_rules;
        Alcotest.test_case "relation decls" `Quick test_parser_relation_decl;
        Alcotest.test_case "object sugar" `Quick test_parser_object_sugar;
        Alcotest.test_case "agg/arith/cmp" `Quick test_parser_agg_arith_cmp;
        Alcotest.test_case "quoted/strings" `Quick test_parser_quoted_and_strings;
        Alcotest.test_case "errors" `Quick test_parser_errors;
        Alcotest.test_case "end to end" `Quick test_parse_end_to_end;
        Alcotest.test_case "terms" `Quick test_parse_term;
      ] );
  ]
