(* Tests for the Datalog engine: relations, stratification, naive vs
   semi-naive evaluation, negation, aggregation, well-founded models. *)

open Logic
open Datalog

let v = Term.var
let s = Term.sym
let i = Term.int
let atom p args = Atom.make p args
let rule h b = Rule.make h b
let fact p args = Rule.fact (atom p args)

let edge x y = fact "edge" [ s x; s y ]

(* tc(X,Y) :- edge(X,Y).  tc(X,Y) :- tc(X,Z), edge(Z,Y). *)
let tc_rules =
  [
    rule (atom "tc" [ v "X"; v "Y" ]) [ Literal.pos "edge" [ v "X"; v "Y" ] ];
    rule
      (atom "tc" [ v "X"; v "Y" ])
      [ Literal.pos "tc" [ v "X"; v "Z" ]; Literal.pos "edge" [ v "Z"; v "Y" ] ];
  ]

let chain_edges n =
  List.init n (fun k -> edge (Printf.sprintf "n%d" k) (Printf.sprintf "n%d" (k + 1)))

let sorted_answers db p arity =
  Engine.answers db (atom p (List.init arity (fun k -> v (Printf.sprintf "A%d" k))))
  |> List.map (fun tup -> String.concat "," (List.map Term.to_string tup))
  |> List.sort String.compare

(* -------------------------------------------------------------------- *)
(* Relation / database *)

let test_relation_basics () =
  let r = Relation.create () in
  Alcotest.(check bool) "add new" true (Relation.add r [ s "a"; s "b" ]);
  Alcotest.(check bool) "add dup" false (Relation.add r [ s "a"; s "b" ]);
  Alcotest.(check int) "cardinal" 1 (Relation.cardinal r);
  Alcotest.(check bool) "mem" true (Relation.mem r [ s "a"; s "b" ]);
  Alcotest.check_raises "non-ground rejected"
    (Invalid_argument "Relation.add: non-ground tuple (X, b)") (fun () ->
      ignore (Relation.add r [ v "X"; s "b" ]))

let test_relation_lookup_select () =
  let r = Relation.of_list [ [ s "a"; s "b" ]; [ s "a"; s "c" ]; [ s "d"; s "b" ] ] in
  Alcotest.(check int) "lookup pos 0" 2 (List.length (Relation.lookup r ~pos:0 (s "a")));
  Alcotest.(check int) "lookup pos 1" 2 (List.length (Relation.lookup r ~pos:1 (s "b")));
  Alcotest.(check int) "select bound first" 2
    (List.length (Relation.select r ~pattern:[ s "a"; v "Y" ]));
  Alcotest.(check int) "select all" 3
    (List.length (Relation.select r ~pattern:[ v "X"; v "Y" ]));
  (* repeated variable: only tuples with equal components *)
  let rr = Relation.of_list [ [ s "a"; s "a" ]; [ s "a"; s "b" ] ] in
  Alcotest.(check int) "select diagonal" 1
    (List.length (Relation.select rr ~pattern:[ v "X"; v "X" ]))

let test_relation_index_after_add () =
  let r = Relation.create () in
  ignore (Relation.add r [ s "a"; s "b" ]);
  (* force index creation *)
  ignore (Relation.lookup r ~pos:0 (s "a"));
  ignore (Relation.add r [ s "a"; s "c" ]);
  Alcotest.(check int) "index maintained incrementally" 2
    (List.length (Relation.lookup r ~pos:0 (s "a")))

let test_relation_copy_lookup () =
  (* Copies clone index tables: an index built on the original must
     answer lookups on the copy, and mutations after the copy must not
     leak across in either direction — including through a lazily
     pending insertion log shared at copy time. *)
  let r = Relation.create () in
  ignore (Relation.add r [ s "a"; s "b" ]);
  ignore (Relation.lookup r ~pos:0 (s "a"));
  (* this row is only in the insertion log, not yet in the index *)
  ignore (Relation.add r [ s "a"; s "c" ]);
  let r2 = Relation.copy r in
  Alcotest.(check int) "copy answers via cloned index" 2
    (List.length (Relation.lookup r2 ~pos:0 (s "a")));
  ignore (Relation.add r2 [ s "a"; s "d" ]);
  ignore (Relation.remove r [ s "a"; s "b" ]);
  Alcotest.(check int) "original unaffected by copy's insert" 1
    (List.length (Relation.lookup r ~pos:0 (s "a")));
  Alcotest.(check int) "copy unaffected by original's remove" 3
    (List.length (Relation.lookup r2 ~pos:0 (s "a")))

let test_database () =
  let db = Database.create () in
  ignore (Database.add_fact db (atom "p" [ s "a" ]));
  ignore (Database.add_fact db (atom "q" [ s "b"; s "c" ]));
  Alcotest.(check int) "cardinal" 2 (Database.cardinal db);
  Alcotest.(check (list string)) "predicates" [ "p"; "q" ] (Database.predicates db);
  let db2 = Database.copy db in
  ignore (Database.add_fact db2 (atom "p" [ s "z" ]));
  Alcotest.(check int) "copy isolated" 1 (Database.count db "p");
  Alcotest.(check int) "copy extended" 2 (Database.count db2 "p")

(* -------------------------------------------------------------------- *)
(* Stratification *)

let test_stratify_positive () =
  let p = Program.make_exn tc_rules in
  match Stratify.stratify p with
  | Stratify.Stratified strata ->
    Alcotest.(check int) "single stratum" 1 (List.length strata)
  | Stratify.Unstratified _ -> Alcotest.fail "tc is stratified"

let test_stratify_negation () =
  (* unreach(X) :- node(X), not reach(X) — reach below unreach. *)
  let rules =
    tc_rules
    @ [
        rule (atom "reach" [ v "X" ]) [ Literal.pos "tc" [ s "root"; v "X" ] ];
        rule
          (atom "unreach" [ v "X" ])
          [ Literal.pos "node" [ v "X" ]; Literal.neg "reach" [ v "X" ] ];
      ]
  in
  let p = Program.make_exn rules in
  match Stratify.stratify p with
  | Stratify.Stratified strata ->
    let stratum_of q =
      List.mapi (fun k qs -> (k, qs)) strata
      |> List.find (fun (_, qs) -> List.mem q qs)
      |> fst
    in
    Alcotest.(check bool) "reach below unreach" true
      (stratum_of "reach" < stratum_of "unreach")
  | Stratify.Unstratified _ -> Alcotest.fail "program is stratified"

let test_stratify_cycle_detected () =
  (* p :- not q. q :- not p. *)
  let rules =
    [
      rule (atom "p" [ s "a" ]) [ Literal.pos "u" [ s "a" ]; Literal.neg "q" [ s "a" ] ];
      rule (atom "q" [ s "a" ]) [ Literal.pos "u" [ s "a" ]; Literal.neg "p" [ s "a" ] ];
    ]
  in
  let p = Program.make_exn rules in
  match Stratify.stratify p with
  | Stratify.Unstratified _ -> ()
  | Stratify.Stratified _ -> Alcotest.fail "negative cycle must be rejected"

let test_stratify_aggregate_edge () =
  (* count over p feeding p would be unstratified. *)
  let rules =
    [
      rule (atom "p" [ v "N" ])
        [
          Literal.count ~target:(v "X") ~group_by:[] ~result:(v "N")
            [ atom "p" [ v "X" ] ];
        ];
    ]
  in
  let p = Program.make_exn rules in
  Alcotest.(check bool) "aggregate self-loop unstratified" false
    (Stratify.is_stratified p)

(* -------------------------------------------------------------------- *)
(* Materialization: closure, negation, aggregates *)

let test_tc_chain () =
  let p = Program.make_exn (tc_rules @ chain_edges 10) in
  let db = Engine.materialize p (Database.create ()) in
  (* chain of 11 nodes: 55 tc pairs *)
  Alcotest.(check int) "tc count" 55 (Database.count db "tc");
  Alcotest.(check bool) "endpoint reachable" true
    (Database.mem db (atom "tc" [ s "n0"; s "n10" ]))

let test_naive_equals_seminaive () =
  let p = Program.make_exn (tc_rules @ chain_edges 15) in
  let db_n =
    Engine.materialize
      ~config:{ Engine.default_config with Engine.strategy = Engine.Naive }
      p (Database.create ())
  in
  let db_s = Engine.materialize p (Database.create ()) in
  Alcotest.(check (list string))
    "same model" (sorted_answers db_n "tc" 2) (sorted_answers db_s "tc" 2)

let test_seminaive_cheaper () =
  let p = Program.make_exn (tc_rules @ chain_edges 30) in
  let rn = ref Engine.empty_report in
  let rs = ref !rn in
  ignore
    (Engine.materialize
       ~config:{ Engine.default_config with Engine.strategy = Engine.Naive }
       ~report:rn p (Database.create ()));
  ignore (Engine.materialize ~report:rs p (Database.create ()));
  Alcotest.(check bool)
    (Printf.sprintf "semi-naive scans fewer tuples (%d < %d)"
       !rs.Engine.tuples_scanned !rn.Engine.tuples_scanned)
    true
    (!rs.Engine.tuples_scanned < !rn.Engine.tuples_scanned)

let test_negation_stratified () =
  let rules =
    tc_rules
    @ [
        rule (atom "node" [ v "X" ]) [ Literal.pos "edge" [ v "X"; v "Y" ] ];
        rule (atom "node" [ v "Y" ]) [ Literal.pos "edge" [ v "X"; v "Y" ] ];
        rule (atom "reach" [ v "X" ]) [ Literal.pos "tc" [ s "n0"; v "X" ] ];
        rule
          (atom "unreach" [ v "X" ])
          [ Literal.pos "node" [ v "X" ]; Literal.neg "reach" [ v "X" ] ];
      ]
    @ chain_edges 3
    @ [ edge "isolated" "isolated2" ]
  in
  let db = Engine.materialize (Program.make_exn rules) (Database.create ()) in
  Alcotest.(check bool) "isolated unreachable" true
    (Database.mem db (atom "unreach" [ s "isolated" ]));
  Alcotest.(check bool) "n0 not unreachable (not reach(n0) is true though: n0 unreach)" true
    (Database.mem db (atom "unreach" [ s "n0" ]));
  Alcotest.(check bool) "n3 reachable" true
    (not (Database.mem db (atom "unreach" [ s "n3" ])))

let test_aggregate_count_group () =
  (* per-department headcount *)
  let rules =
    [
      fact "works" [ s "ann"; s "cs" ];
      fact "works" [ s "bob"; s "cs" ];
      fact "works" [ s "carla"; s "math" ];
      rule
        (atom "headcount" [ v "D"; v "N" ])
        [
          Literal.count ~target:(v "P") ~group_by:[ v "D" ] ~result:(v "N")
            [ atom "works" [ v "P"; v "D" ] ];
        ];
    ]
  in
  let db = Engine.materialize (Program.make_exn rules) (Database.create ()) in
  Alcotest.(check bool) "cs=2" true (Database.mem db (atom "headcount" [ s "cs"; i 2 ]));
  Alcotest.(check bool) "math=1" true
    (Database.mem db (atom "headcount" [ s "math"; i 1 ]));
  Alcotest.(check int) "two groups" 2 (Database.count db "headcount")

let test_aggregate_count_distinct () =
  (* duplicate derivations must not double-count (set semantics) *)
  let rules =
    [
      fact "e1" [ s "x"; s "a" ];
      fact "e2" [ s "x"; s "a" ];
      rule (atom "u" [ v "X"; v "Y" ]) [ Literal.pos "e1" [ v "X"; v "Y" ] ];
      rule (atom "u" [ v "X"; v "Y" ]) [ Literal.pos "e2" [ v "X"; v "Y" ] ];
      rule
        (atom "n" [ v "N" ])
        [
          Literal.count ~target:(v "Y") ~group_by:[] ~result:(v "N")
            [ atom "u" [ s "x"; v "Y" ] ];
        ];
    ]
  in
  let db = Engine.materialize (Program.make_exn rules) (Database.create ()) in
  Alcotest.(check bool) "count distinct" true (Database.mem db (atom "n" [ i 1 ]))

let test_aggregate_sum_min_max_avg () =
  let rules =
    [
      fact "m" [ s "a"; i 10 ];
      fact "m" [ s "b"; i 20 ];
      fact "m" [ s "c"; i 30 ];
      rule (atom "total" [ v "N" ])
        [
          Literal.agg Literal.Sum ~target:(v "V") ~group_by:[] ~result:(v "N")
            [ atom "m" [ v "K"; v "V" ] ];
        ];
      rule (atom "lo" [ v "N" ])
        [
          Literal.agg Literal.Min ~target:(v "V") ~group_by:[] ~result:(v "N")
            [ atom "m" [ v "K"; v "V" ] ];
        ];
      rule (atom "hi" [ v "N" ])
        [
          Literal.agg Literal.Max ~target:(v "V") ~group_by:[] ~result:(v "N")
            [ atom "m" [ v "K"; v "V" ] ];
        ];
      rule (atom "mean" [ v "N" ])
        [
          Literal.agg Literal.Avg ~target:(v "V") ~group_by:[] ~result:(v "N")
            [ atom "m" [ v "K"; v "V" ] ];
        ];
    ]
  in
  let db = Engine.materialize (Program.make_exn rules) (Database.create ()) in
  Alcotest.(check bool) "sum" true (Database.mem db (atom "total" [ Term.float 60.0 ]));
  Alcotest.(check bool) "min" true (Database.mem db (atom "lo" [ i 10 ]));
  Alcotest.(check bool) "max" true (Database.mem db (atom "hi" [ i 30 ]));
  Alcotest.(check bool) "avg" true (Database.mem db (atom "mean" [ Term.float 20.0 ]))

let test_arith_assign () =
  let rules =
    [
      fact "p" [ i 4 ];
      rule (atom "q" [ v "Y" ])
        [
          Literal.pos "p" [ v "X" ];
          Literal.assign (v "Y")
            (Literal.Bin (Literal.Mul, Literal.Leaf (v "X"), Literal.Leaf (i 3)));
        ];
    ]
  in
  let db = Engine.materialize (Program.make_exn rules) (Database.create ()) in
  Alcotest.(check bool) "4*3=12" true (Database.mem db (atom "q" [ i 12 ]))

let test_skolem_bound () =
  (* f-chains: p(f(X)) :- p(X) — must terminate via depth bound. *)
  let rules =
    [
      fact "p" [ s "a" ];
      rule (atom "p" [ Term.app "f" [ v "X" ] ]) [ Literal.pos "p" [ v "X" ] ];
    ]
  in
  let report = ref Engine.empty_report in
  let db =
    Engine.materialize
      ~config:{ Engine.default_config with Engine.max_term_depth = 4 }
      ~report (Program.make_exn rules) (Database.create ())
  in
  (* a, f(a), f(f(a)), f(f(f(a))) : depths 1..4 *)
  Alcotest.(check int) "bounded facts" 4 (Database.count db "p");
  Alcotest.(check bool) "suppression recorded" true
    (!report.Engine.skolems_suppressed > 0)

(* -------------------------------------------------------------------- *)
(* Well-founded semantics *)

let test_wellfounded_win_move () =
  (* win(X) :- move(X,Y), not win(Y).
     Chain a->b->c: win(b) (b moves to dead-end c), win(a) undefined? No:
     a->b, b->c, c dead. win(b) true (move to c, c has no move so not win(c)).
     win(a): move to b, win(b) true, so win(a) false. All total. *)
  let rules =
    [
      fact "move" [ s "a"; s "b" ];
      fact "move" [ s "b"; s "c" ];
      rule (atom "win" [ v "X" ])
        [ Literal.pos "move" [ v "X"; v "Y" ]; Literal.neg "win" [ v "Y" ] ];
    ]
  in
  let m = Wellfounded.compute (Program.make_exn rules) (Database.create ()) in
  Alcotest.(check bool) "win(b)" true
    (Database.mem m.Wellfounded.true_facts (atom "win" [ s "b" ]));
  Alcotest.(check bool) "not win(a)" false
    (Database.mem m.Wellfounded.true_facts (atom "win" [ s "a" ]));
  Alcotest.(check bool) "total" true (Wellfounded.is_total m)

let test_wellfounded_undefined_cycle () =
  (* a <-> b two-cycle: win(a), win(b) both undefined. *)
  let rules =
    [
      fact "move" [ s "a"; s "b" ];
      fact "move" [ s "b"; s "a" ];
      rule (atom "win" [ v "X" ])
        [ Literal.pos "move" [ v "X"; v "Y" ]; Literal.neg "win" [ v "Y" ] ];
    ]
  in
  let m = Wellfounded.compute (Program.make_exn rules) (Database.create ()) in
  Alcotest.(check int) "both undefined" 2
    (Database.count m.Wellfounded.undefined "win");
  Alcotest.(check bool) "not total" false (Wellfounded.is_total m)

let test_wellfounded_agrees_with_stratified () =
  let rules =
    tc_rules @ chain_edges 5
    @ [
        rule (atom "node" [ v "X" ]) [ Literal.pos "edge" [ v "X"; v "Y" ] ];
        rule
          (atom "sink" [ v "X" ])
          [ Literal.pos "node" [ v "X" ]; Literal.neg "edge" [ v "X"; v "X" ] ];
      ]
  in
  let p = Program.make_exn rules in
  let strat = Engine.materialize p (Database.create ()) in
  let wf = Wellfounded.compute p (Database.create ()) in
  Alcotest.(check bool) "wf total on stratified" true (Wellfounded.is_total wf);
  Alcotest.(check int) "same cardinality" (Database.cardinal strat)
    (Database.cardinal wf.Wellfounded.true_facts)

let test_engine_unstratified_guard () =
  let rules =
    [
      fact "u" [ s "a" ];
      rule (atom "p" [ v "X" ]) [ Literal.pos "u" [ v "X" ]; Literal.neg "q" [ v "X" ] ];
      rule (atom "q" [ v "X" ]) [ Literal.pos "u" [ v "X" ]; Literal.neg "p" [ v "X" ] ];
    ]
  in
  let p = Program.make_exn rules in
  (match
     Engine.materialize
       ~config:{ Engine.default_config with Engine.allow_wellfounded_fallback = false }
       p (Database.create ())
   with
  | exception Engine.Unstratified _ -> ()
  | _ -> Alcotest.fail "expected Unstratified");
  (* With fallback: p/q over 'a' are undefined -> Undefined_atoms. *)
  match Engine.materialize p (Database.create ()) with
  | exception Engine.Undefined_atoms 2 -> ()
  | exception Engine.Undefined_atoms n -> Alcotest.failf "expected 2 undefined, got %d" n
  | _ -> Alcotest.fail "expected Undefined_atoms"

(* -------------------------------------------------------------------- *)
(* Query API *)

let test_query_conjunctive () =
  let p = Program.make_exn (tc_rules @ chain_edges 4) in
  let db = Engine.materialize p (Database.create ()) in
  let ss =
    Engine.query db
      [ Literal.pos "tc" [ s "n0"; v "X" ]; Literal.pos "tc" [ v "X"; s "n4" ] ]
  in
  (* intermediate nodes n1..n3 *)
  Alcotest.(check int) "intermediates" 3 (List.length ss)

let test_query_negation_and_cmp () =
  let db = Database.create () in
  List.iter (fun k -> ignore (Database.add_fact db (atom "val" [ i k ]))) [ 1; 2; 3; 4 ];
  ignore (Database.add_fact db (atom "bad" [ i 2 ]));
  let ss =
    Engine.query db
      [
        Literal.pos "val" [ v "X" ];
        Literal.neg "bad" [ v "X" ];
        Literal.cmp Literal.Lt (v "X") (i 4);
      ]
  in
  Alcotest.(check int) "1 and 3" 2 (List.length ss)

(* Property: naive and semi-naive agree on random acyclic tc workloads. *)
let prop_strategies_agree =
  QCheck.Test.make ~name:"naive = semi-naive on random graphs" ~count:60
    QCheck.(pair (int_bound 12) (list_of_size Gen.(int_bound 30) (pair (int_bound 12) (int_bound 12))))
    (fun (n, pairs) ->
      let edges =
        List.map
          (fun (a, b) ->
            fact "edge" [ s (Printf.sprintf "v%d" (a mod (n + 1)));
                          s (Printf.sprintf "v%d" (b mod (n + 1))) ])
          pairs
      in
      let p = Program.make_exn (tc_rules @ edges) in
      let db_n =
        Engine.materialize
          ~config:{ Engine.default_config with Engine.strategy = Engine.Naive }
          p (Database.create ())
      in
      let db_s = Engine.materialize p (Database.create ()) in
      sorted_answers db_n "tc" 2 = sorted_answers db_s "tc" 2)

(* Property: tc is transitive and contains edge. *)
let prop_tc_transitive =
  QCheck.Test.make ~name:"tc is a transitive superset of edge" ~count:40
    QCheck.(list_of_size Gen.(int_bound 25) (pair (int_bound 8) (int_bound 8)))
    (fun pairs ->
      let edges =
        List.map
          (fun (a, b) ->
            fact "edge" [ s (Printf.sprintf "v%d" a); s (Printf.sprintf "v%d" b) ])
          pairs
      in
      let p = Program.make_exn (tc_rules @ edges) in
      let db = Engine.materialize p (Database.create ()) in
      let tc = Engine.answers db (atom "tc" [ v "X"; v "Y" ]) in
      let mem x y = Database.mem db (atom "tc" [ x; y ]) in
      List.for_all
        (fun tup ->
          match tup with
          | [ x; y ] ->
            List.for_all
              (fun tup2 ->
                match tup2 with
                | [ y'; z ] -> (not (Term.equal y y')) || mem x z
                | _ -> false)
              tc
          | _ -> false)
        tc)

let suites =
  [
    ( "datalog.storage",
      [
        Alcotest.test_case "relation basics" `Quick test_relation_basics;
        Alcotest.test_case "lookup/select" `Quick test_relation_lookup_select;
        Alcotest.test_case "incremental index" `Quick test_relation_index_after_add;
        Alcotest.test_case "lookup after copy" `Quick test_relation_copy_lookup;
        Alcotest.test_case "database" `Quick test_database;
      ] );
    ( "datalog.stratify",
      [
        Alcotest.test_case "positive" `Quick test_stratify_positive;
        Alcotest.test_case "negation strata" `Quick test_stratify_negation;
        Alcotest.test_case "cycle detected" `Quick test_stratify_cycle_detected;
        Alcotest.test_case "aggregate edge" `Quick test_stratify_aggregate_edge;
      ] );
    ( "datalog.materialize",
      [
        Alcotest.test_case "tc chain" `Quick test_tc_chain;
        Alcotest.test_case "naive = seminaive" `Quick test_naive_equals_seminaive;
        Alcotest.test_case "seminaive cheaper" `Quick test_seminaive_cheaper;
        Alcotest.test_case "stratified negation" `Quick test_negation_stratified;
        Alcotest.test_case "count group-by" `Quick test_aggregate_count_group;
        Alcotest.test_case "count distinct" `Quick test_aggregate_count_distinct;
        Alcotest.test_case "sum/min/max/avg" `Quick test_aggregate_sum_min_max_avg;
        Alcotest.test_case "arith assign" `Quick test_arith_assign;
        Alcotest.test_case "skolem bound" `Quick test_skolem_bound;
      ] );
    ( "datalog.wellfounded",
      [
        Alcotest.test_case "win-move total" `Quick test_wellfounded_win_move;
        Alcotest.test_case "undefined 2-cycle" `Quick test_wellfounded_undefined_cycle;
        Alcotest.test_case "agrees with stratified" `Quick test_wellfounded_agrees_with_stratified;
        Alcotest.test_case "engine guard" `Quick test_engine_unstratified_guard;
      ] );
    ( "datalog.query",
      [
        Alcotest.test_case "conjunctive" `Quick test_query_conjunctive;
        Alcotest.test_case "negation + cmp" `Quick test_query_negation_and_cmp;
        QCheck_alcotest.to_alcotest prop_strategies_agree;
        QCheck_alcotest.to_alcotest prop_tc_transitive;
      ] );
  ]
